//! Execution statistics.
//!
//! The evaluation section of the paper reports per-iteration runtimes and the
//! number of records ("messages") exchanged between parallel instances
//! (Figures 2, 10, 12).  The executor therefore counts, per operator, how many
//! records it consumed and produced, and globally how many records and bytes
//! crossed partition boundaries — the shared-memory stand-in for network
//! traffic in the paper's cluster setup.

use std::collections::HashMap;
use std::time::Duration;

/// Per-operator counters.
#[derive(Debug, Clone, Default)]
pub struct OperatorStats {
    /// Operator name (as given when building the plan).
    pub name: String,
    /// Contract name (Map, Reduce, Match, ...).
    pub contract: String,
    /// Records consumed across all inputs and partitions.
    pub records_in: usize,
    /// Records produced across all partitions.
    pub records_out: usize,
    /// Wall-clock time spent in the operator's local work (summed over
    /// partitions; parallel instances overlap, so this is CPU-time-like).
    pub elapsed: Duration,
}

/// Counters for one plan execution.
#[derive(Debug, Clone, Default)]
pub struct ExecutionStats {
    /// Per-operator counters keyed by operator name.
    pub operators: Vec<OperatorStats>,
    /// Records that moved to a different partition than the one that produced
    /// them (hash/range repartitioning) or were replicated (broadcast).
    pub shipped_records: usize,
    /// Serialized bytes of the shipped records (exact under the binary page
    /// format, see [`crate::page`]).
    pub shipped_bytes: usize,
    /// Sealed record pages moved (or, for broadcast, shared) across
    /// partition boundaries.
    pub shipped_pages: usize,
    /// Serialized bytes the exchanges moved to disk as spilled runs because
    /// a memory budget was exceeded (see [`crate::spill`]).
    pub spilled_bytes: usize,
    /// Number of spilled runs the exchanges wrote.
    pub spilled_runs: usize,
    /// Records that stayed within their partition (forward shipping).
    pub local_records: usize,
    /// Number of input edges served from the loop-invariant cache instead of
    /// being re-shipped.
    pub cache_hits: usize,
    /// Operators that ran as members of fused (streaming) chains instead of
    /// materializing their forward input (see `crate::exec`).
    pub chained_operators: usize,
    /// Maximum sealed pages any single chained edge ever had in flight — by
    /// construction bounded by the configured channel credits, which is what
    /// makes the chain's memory bound (`credits × page size` per edge)
    /// observable.
    pub peak_chain_pages: usize,
    /// Wall-clock time of the whole plan execution.
    pub elapsed: Duration,
}

impl ExecutionStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total records produced by the operator with the given name (0 if the
    /// operator does not appear).
    pub fn records_out_of(&self, operator_name: &str) -> usize {
        self.operators
            .iter()
            .filter(|o| o.name == operator_name)
            .map(|o| o.records_out)
            .sum()
    }

    /// Sum of records produced by all operators.
    pub fn total_records_out(&self) -> usize {
        self.operators.iter().map(|o| o.records_out).sum()
    }

    /// Merges the counters of another execution into this one.  The iteration
    /// runtime uses this to accumulate per-superstep statistics into totals.
    pub fn merge(&mut self, other: &ExecutionStats) {
        let mut by_name: HashMap<String, usize> = self
            .operators
            .iter()
            .enumerate()
            .map(|(i, o)| (o.name.clone(), i))
            .collect();
        for op in &other.operators {
            match by_name.get(&op.name) {
                Some(&i) => {
                    self.operators[i].records_in += op.records_in;
                    self.operators[i].records_out += op.records_out;
                    self.operators[i].elapsed += op.elapsed;
                }
                None => {
                    by_name.insert(op.name.clone(), self.operators.len());
                    self.operators.push(op.clone());
                }
            }
        }
        self.shipped_records += other.shipped_records;
        self.shipped_bytes += other.shipped_bytes;
        self.shipped_pages += other.shipped_pages;
        self.spilled_bytes += other.spilled_bytes;
        self.spilled_runs += other.spilled_runs;
        self.local_records += other.local_records;
        self.cache_hits += other.cache_hits;
        self.chained_operators += other.chained_operators;
        // The peak is a high-water mark, not a flow: the bound holds per
        // execution, so merged runs keep the worst single observation.
        self.peak_chain_pages = self.peak_chain_pages.max(other.peak_chain_pages);
        self.elapsed += other.elapsed;
    }

    /// Renders the statistics as an aligned table for harness output.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>12} {:>12} {:>12}\n",
            "operator", "records_in", "records_out", "millis"
        ));
        for op in &self.operators {
            out.push_str(&format!(
                "{:<28} {:>12} {:>12} {:>12.2}\n",
                format!("{} [{}]", op.name, op.contract),
                op.records_in,
                op.records_out,
                op.elapsed.as_secs_f64() * 1e3
            ));
        }
        out.push_str(&format!(
            "shipped={} records ({} bytes), spilled={} bytes in {} runs, local={}, \
             cache_hits={}, chained={} ops (peak {} pages/edge), elapsed={:.2} ms\n",
            self.shipped_records,
            self.shipped_bytes,
            self.spilled_bytes,
            self.spilled_runs,
            self.local_records,
            self.cache_hits,
            self.chained_operators,
            self.peak_chain_pages,
            self.elapsed.as_secs_f64() * 1e3
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(name: &str, records_out: usize) -> ExecutionStats {
        ExecutionStats {
            operators: vec![OperatorStats {
                name: name.into(),
                contract: "Map".into(),
                records_in: records_out,
                records_out,
                elapsed: Duration::from_millis(5),
            }],
            shipped_records: 10,
            shipped_bytes: 100,
            shipped_pages: 2,
            spilled_bytes: 40,
            spilled_runs: 1,
            local_records: 3,
            cache_hits: 1,
            chained_operators: 2,
            peak_chain_pages: 3,
            elapsed: Duration::from_millis(7),
        }
    }

    #[test]
    fn merge_accumulates_matching_operators() {
        let mut a = stats_with("scale", 4);
        let b = stats_with("scale", 6);
        a.merge(&b);
        assert_eq!(a.records_out_of("scale"), 10);
        assert_eq!(a.shipped_records, 20);
        assert_eq!(a.spilled_bytes, 80);
        assert_eq!(a.spilled_runs, 2);
        assert_eq!(a.cache_hits, 2);
        assert_eq!(a.chained_operators, 4);
        assert_eq!(a.peak_chain_pages, 3, "peaks keep the max, not the sum");
        assert_eq!(a.operators.len(), 1);
    }

    #[test]
    fn merge_appends_new_operators() {
        let mut a = stats_with("scale", 4);
        let b = stats_with("sum", 6);
        a.merge(&b);
        assert_eq!(a.operators.len(), 2);
        assert_eq!(a.records_out_of("sum"), 6);
        assert_eq!(a.total_records_out(), 10);
    }

    #[test]
    fn missing_operator_reports_zero() {
        let a = stats_with("scale", 4);
        assert_eq!(a.records_out_of("nope"), 0);
    }

    #[test]
    fn table_rendering_contains_counters() {
        let a = stats_with("scale", 4);
        let table = a.to_table();
        assert!(table.contains("scale [Map]"));
        assert!(table.contains("shipped=10"));
    }
}
