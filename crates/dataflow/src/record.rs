//! Records: the unit of data flowing along dataflow edges.

use crate::value::Value;
use std::fmt;

/// A record is a short, positionally addressed sequence of [`Value`]s.
///
/// Operators identify key fields by position (see [`crate::key`]), mirroring
/// the PACT record model: the system does not interpret the payload beyond
/// the declared key fields, which is what allows arbitrary user code inside
/// operators while still supporting partitioning, sorting and joining.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Record {
    fields: Vec<Value>,
}

impl Record {
    /// Creates a record from a vector of values.
    pub fn new(fields: Vec<Value>) -> Self {
        Record { fields }
    }

    /// Creates an empty record; fields can be appended with [`Record::push`].
    pub fn empty() -> Self {
        Record { fields: Vec::new() }
    }

    /// Convenience constructor for the ubiquitous `(long, long)` records
    /// (edges, vertex/component pairs, vertex/candidate pairs).
    pub fn pair(a: i64, b: i64) -> Self {
        Record {
            fields: vec![Value::Long(a), Value::Long(b)],
        }
    }

    /// Convenience constructor for `(long, double)` records (rank vectors).
    pub fn long_double(a: i64, b: f64) -> Self {
        Record {
            fields: vec![Value::Long(a), Value::Double(b)],
        }
    }

    /// Convenience constructor for `(long, long, double)` records (the sparse
    /// transition-matrix representation of PageRank).
    pub fn triple(a: i64, b: i64, c: f64) -> Self {
        Record {
            fields: vec![Value::Long(a), Value::Long(b), Value::Double(c)],
        }
    }

    /// Number of fields in the record.
    #[inline]
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Returns the field at `idx`; panics if the index is out of bounds, which
    /// indicates a plan/UDF arity mismatch.
    #[inline]
    pub fn field(&self, idx: usize) -> &Value {
        &self.fields[idx]
    }

    /// Returns the integer stored in field `idx`.
    #[inline]
    pub fn long(&self, idx: usize) -> i64 {
        self.fields[idx].as_long()
    }

    /// Returns the float stored in field `idx`.
    #[inline]
    pub fn double(&self, idx: usize) -> f64 {
        self.fields[idx].as_double()
    }

    /// Returns the boolean stored in field `idx`.
    #[inline]
    pub fn bool(&self, idx: usize) -> bool {
        self.fields[idx].as_bool()
    }

    /// Replaces the field at `idx` with `value`.
    #[inline]
    pub fn set_field(&mut self, idx: usize, value: Value) {
        self.fields[idx] = value;
    }

    /// Appends a field.
    #[inline]
    pub fn push(&mut self, value: Value) {
        self.fields.push(value);
    }

    /// Removes all fields, keeping the allocation.  Used by the page readers
    /// to reuse one scratch record across deserializations.
    #[inline]
    pub fn clear(&mut self) {
        self.fields.clear();
    }

    /// Borrow the underlying fields.
    #[inline]
    pub fn fields(&self) -> &[Value] {
        &self.fields
    }

    /// Consume the record and return its fields.
    #[inline]
    pub fn into_fields(self) -> Vec<Value> {
        self.fields
    }

    /// Builds a new record by concatenating the fields of `self` and `other`;
    /// used by join-style operators that forward both sides.
    pub fn concat(&self, other: &Record) -> Record {
        let mut fields = Vec::with_capacity(self.arity() + other.arity());
        fields.extend_from_slice(&self.fields);
        fields.extend_from_slice(&other.fields);
        Record { fields }
    }

    /// Builds a new record keeping only the fields at `indices`, in order.
    pub fn project(&self, indices: &[usize]) -> Record {
        Record {
            fields: indices.iter().map(|&i| self.fields[i].clone()).collect(),
        }
    }

    /// The **exact** serialized size of this record in bytes under the
    /// binary page format of [`crate::page`]: the 4-byte length prefix plus
    /// each field's width.  Used for shipped-bytes accounting, the
    /// optimizer's cost model, and the page writer's fit check.
    pub fn estimated_bytes(&self) -> usize {
        crate::page::RECORD_FRAME_BYTES
            + self
                .fields
                .iter()
                .map(Value::estimated_bytes)
                .sum::<usize>()
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Record {
    fn from(fields: Vec<Value>) -> Self {
        Record::new(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_constructor_and_accessors() {
        let r = Record::pair(3, 9);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.long(0), 3);
        assert_eq!(r.long(1), 9);
    }

    #[test]
    fn long_double_and_triple() {
        let r = Record::long_double(1, 0.25);
        assert_eq!(r.double(1), 0.25);
        let t = Record::triple(1, 2, 0.5);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.long(1), 2);
        assert_eq!(t.double(2), 0.5);
    }

    #[test]
    fn set_field_and_push() {
        let mut r = Record::empty();
        r.push(Value::Long(5));
        r.push(Value::Text("x".into()));
        r.set_field(0, Value::Long(6));
        assert_eq!(r.long(0), 6);
        assert_eq!(r.field(1).as_text(), "x");
    }

    #[test]
    fn concat_joins_fields_in_order() {
        let a = Record::pair(1, 2);
        let b = Record::long_double(3, 4.0);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 4);
        assert_eq!(c.long(2), 3);
        assert_eq!(c.double(3), 4.0);
    }

    #[test]
    fn project_selects_and_reorders() {
        let r = Record::triple(1, 2, 0.5);
        let p = r.project(&[2, 0]);
        assert_eq!(p.arity(), 2);
        assert_eq!(p.double(0), 0.5);
        assert_eq!(p.long(1), 1);
    }

    #[test]
    fn estimated_bytes_sums_fields() {
        let r = Record::pair(1, 2);
        assert_eq!(r.estimated_bytes(), 4 + 9 + 9);
    }

    #[test]
    fn estimated_bytes_is_the_exact_serialized_width() {
        // The estimate doubles as the fit check of the page writer, so it
        // must equal the serialized length for every variant, fixed-width
        // and variable-width alike.
        let records = [
            Record::pair(1, -1),
            Record::long_double(7, 0.25),
            Record::new(vec![
                Value::Null,
                Value::Bool(false),
                Value::Text("多字节 ✓".into()),
            ]),
            Record::empty(),
        ];
        for r in records {
            let mut buf = Vec::new();
            crate::page::serialize_record(&r, &mut buf);
            assert_eq!(buf.len(), r.estimated_bytes(), "width mismatch for {r}");
        }
    }

    #[test]
    fn clear_keeps_the_record_usable() {
        let mut r = Record::pair(1, 2);
        r.clear();
        assert_eq!(r.arity(), 0);
        r.push(Value::Long(9));
        assert_eq!(r.long(0), 9);
    }

    #[test]
    fn display_is_tuple_like() {
        assert_eq!(Record::pair(1, 2).to_string(), "(1, 2)");
    }

    #[test]
    fn records_are_hashable_and_ordered() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Record::pair(1, 2));
        set.insert(Record::pair(1, 2));
        assert_eq!(set.len(), 1);
        assert!(Record::pair(1, 2) < Record::pair(1, 3));
    }
}
