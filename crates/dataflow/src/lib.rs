//! # dataflow — a PACT-style parallel dataflow engine
//!
//! This crate is the batch-processing substrate that the iteration operators
//! of the `spinning-core` crate are embedded into, closely following the
//! Stratosphere system assumed by *Spinning Fast Iterative Data Flows*
//! (Ewen et al., VLDB 2012), Section 3:
//!
//! * **Record model** — records are short sequences of [`Value`]s; operators
//!   address key fields by position ([`record`], [`value`], [`key`]).
//! * **Serialized pages** — records that cross partition boundaries travel
//!   as length-prefixed binary data in sealed page buffers, so repartitioning
//!   moves page pointers and ships bytes, not heap objects ([`page`]).
//! * **Spilling** — under a memory budget, exchanges move sealed pages to
//!   disk as sorted runs and sort-based strategies consume them through a
//!   streaming k-way merge, so iterations keep working when the exchanged
//!   state exceeds memory ([`spill`]).
//! * **Parallelization Contracts** — `Map`, `Reduce`, `Match`, `Cross`,
//!   `CoGroup` and `InnerCoGroup` second-order functions wrapping arbitrary
//!   user code ([`contracts`]).
//! * **Logical plans** — DAGs of sources, operators and sinks ([`plan`]).
//! * **Physical plans** — shipping strategies (forward, hash/range partition,
//!   broadcast) per edge and local strategies (hash/sort joins and groupings)
//!   per operator ([`physical`]).
//! * **Executor** — a multi-threaded shared-nothing runtime where each worker
//!   partition stands in for a cluster node; records crossing partitions are
//!   counted as network traffic ([`exec`], [`stats`]).
//!
//! ```
//! use dataflow::prelude::*;
//! use std::sync::Arc;
//!
//! // Count edges per source vertex.
//! let mut plan = Plan::new();
//! let edges = plan.source("edges", vec![
//!     Record::pair(1, 2), Record::pair(1, 3), Record::pair(2, 3),
//! ]);
//! let degree = plan.reduce(
//!     "degree",
//!     edges,
//!     vec![0],
//!     Arc::new(ReduceClosure(|key: &[Value], group: &[Record], out: &mut Collector| {
//!         out.collect(Record::pair(key[0].as_long(), group.len() as i64));
//!     })),
//! );
//! plan.sink("degrees", degree);
//!
//! let physical = default_physical_plan(&plan, 2).unwrap();
//! let result = Executor::new().execute(&physical).unwrap();
//! let mut out = result.sink("degrees").unwrap();
//! out.sort();
//! assert_eq!(out, vec![Record::pair(1, 2), Record::pair(2, 1)]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod contracts;
pub mod credit;
pub mod error;
pub mod exec;
pub mod fault;
pub mod key;
pub mod page;
pub mod physical;
pub mod plan;
pub mod range;
pub mod record;
pub mod spill;
pub mod stats;
pub mod transport;
pub mod value;

/// Convenient glob-import of the commonly used types.
pub mod prelude {
    pub use crate::contracts::{
        CoGroupClosure, CoGroupFunction, Collector, CrossClosure, CrossFunction, MapClosure,
        MapFunction, MatchClosure, MatchFunction, ReduceClosure, ReduceFunction, Udf,
    };
    pub use crate::credit::{
        credit_channel, CreditReceiver, CreditSender, RecvTimeoutError, SendError, TryRecvError,
        TrySendError,
    };
    pub use crate::error::{DataflowError, Result};
    pub use crate::exec::{
        ExecConfig, ExecutionResult, Executor, IntermediateCache, Partition, Partitions,
    };
    pub use crate::fault::{FaultInjector, FaultSite, FAULT_RATE_ENV, FAULT_SEED_ENV};
    pub use crate::key::{FxBuildHasher, FxHashMap, Key, KeyFields, KeyValues};
    pub use crate::page::{ExchangedPartition, PageReader, PageWriter, RecordPage, RecordView};
    pub use crate::physical::{
        default_physical_plan, GlobalOrder, LocalStrategy, PhysicalChoice, PhysicalPlan,
        ShipStrategy,
    };
    pub use crate::plan::{Operator, OperatorId, OperatorKind, Plan};
    pub use crate::range::{sort_by_key_normalized, PartitionRouter, RangeBounds};
    pub use crate::record::Record;
    pub use crate::spill::{
        gc_stale_files, read_records_from, write_records_to, MemoryBudget, MergeSource, RunCursor,
        RunMerger, SpillManager, SpillStats, SpilledRun, SpillingWriter,
    };
    pub use crate::stats::{ExecutionStats, OperatorStats};
    pub use crate::transport::{conn_drop_hook, SharedPageChannel, TransportHandle};
    pub use crate::value::Value;
    pub use comm::{ChannelId, ClusterSpec, CommError};
}

pub use prelude::*;
