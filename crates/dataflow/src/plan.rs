//! Logical dataflow plans: a DAG of sources, operators and sinks.
//!
//! A plan is assembled through the builder methods on [`Plan`]; the result is
//! a purely logical description (which contract, which key fields, which UDF,
//! which inputs).  How the plan is parallelised — shipping strategies per
//! edge, local strategies per operator — is decided separately, either by the
//! naive planner in [`crate::physical`] or by the cost-based optimizer crate.

use crate::contracts::{
    CoGroupFunction, CrossFunction, MapFunction, MatchFunction, ReduceFunction, Udf,
};
use crate::error::{DataflowError, Result};
use crate::key::KeyFields;
use crate::record::Record;
use std::collections::VecDeque;
use std::sync::Arc;

/// Identifies an operator inside one [`Plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OperatorId(pub usize);

/// The contract (and contract-specific configuration) of an operator.
#[derive(Debug, Clone)]
pub enum OperatorKind {
    /// A data source holding an in-memory bag of records.  The records are
    /// shared so that cloning a plan (e.g. for repeated execution inside an
    /// iteration) does not copy the data.
    Source {
        /// The source's records.
        data: Arc<Vec<Record>>,
    },
    /// Record-at-a-time transformation.
    Map,
    /// Group-at-a-time aggregation over records sharing a key.
    Reduce {
        /// Positions of the grouping key fields.
        key: KeyFields,
    },
    /// Equi-join of two inputs on the given key fields.
    Match {
        /// Key field positions of the first (left) input.
        left_key: KeyFields,
        /// Key field positions of the second (right) input.
        right_key: KeyFields,
    },
    /// Cartesian product of two inputs.
    Cross,
    /// Binary group-at-a-time operator: all records of both inputs sharing a
    /// key form one group.  With `inner == true` this is the `InnerCoGroup`
    /// used by the incremental Connected Components dataflow: keys missing on
    /// either side are dropped.
    CoGroup {
        /// Key field positions of the first (left) input.
        left_key: KeyFields,
        /// Key field positions of the second (right) input.
        right_key: KeyFields,
        /// Drop groups whose key is absent from either side.
        inner: bool,
    },
    /// Bag union of any number of inputs (no duplicate elimination).
    Union,
    /// A named sink; its input records form one of the plan's results.
    Sink {
        /// The name under which the result can be retrieved.
        name: String,
    },
}

impl OperatorKind {
    /// Number of inputs this kind of operator requires, or `None` if it is
    /// variadic (union).
    pub fn expected_inputs(&self) -> Option<usize> {
        match self {
            OperatorKind::Source { .. } => Some(0),
            OperatorKind::Map | OperatorKind::Sink { .. } | OperatorKind::Reduce { .. } => Some(1),
            OperatorKind::Match { .. } | OperatorKind::Cross | OperatorKind::CoGroup { .. } => {
                Some(2)
            }
            OperatorKind::Union => None,
        }
    }

    /// True for record-at-a-time operators (Map, Match, Cross).  Group-at-a-
    /// time operators (Reduce, CoGroup) need a whole key group before they can
    /// produce output; this distinction gates microstep execution
    /// (Section 5.2 of the paper).
    pub fn is_record_at_a_time(&self) -> bool {
        matches!(
            self,
            OperatorKind::Map
                | OperatorKind::Match { .. }
                | OperatorKind::Cross
                | OperatorKind::Union
                | OperatorKind::Sink { .. }
                | OperatorKind::Source { .. }
        )
    }

    /// A short human-readable contract name.
    pub fn contract_name(&self) -> &'static str {
        match self {
            OperatorKind::Source { .. } => "Source",
            OperatorKind::Map => "Map",
            OperatorKind::Reduce { .. } => "Reduce",
            OperatorKind::Match { .. } => "Match",
            OperatorKind::Cross => "Cross",
            OperatorKind::CoGroup { inner: false, .. } => "CoGroup",
            OperatorKind::CoGroup { inner: true, .. } => "InnerCoGroup",
            OperatorKind::Union => "Union",
            OperatorKind::Sink { .. } => "Sink",
        }
    }
}

/// One node of the dataflow DAG.
#[derive(Debug, Clone)]
pub struct Operator {
    /// The operator's id (its index in the plan).
    pub id: OperatorId,
    /// Human-readable name used in plans, stats and error messages.
    pub name: String,
    /// The contract and its configuration.
    pub kind: OperatorKind,
    /// The operator's user-defined function, if any.
    pub udf: Udf,
    /// Ids of the producing operators, in input-slot order.
    pub inputs: Vec<OperatorId>,
    /// Optional cardinality hint for the optimizer (records produced).
    pub estimated_records: Option<usize>,
}

/// A logical dataflow plan: a DAG of [`Operator`]s.
#[derive(Debug, Clone, Default)]
pub struct Plan {
    operators: Vec<Operator>,
}

impl Plan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Plan {
            operators: Vec::new(),
        }
    }

    fn add(
        &mut self,
        name: &str,
        kind: OperatorKind,
        udf: Udf,
        inputs: Vec<OperatorId>,
    ) -> OperatorId {
        let id = OperatorId(self.operators.len());
        self.operators.push(Operator {
            id,
            name: name.to_owned(),
            kind,
            udf,
            inputs,
            estimated_records: None,
        });
        id
    }

    /// Adds an in-memory source.
    pub fn source(&mut self, name: &str, data: Vec<Record>) -> OperatorId {
        self.source_shared(name, Arc::new(data))
    }

    /// Adds a source backed by shared (already `Arc`-wrapped) records; cloning
    /// the plan will not copy the data.
    pub fn source_shared(&mut self, name: &str, data: Arc<Vec<Record>>) -> OperatorId {
        let estimate = data.len();
        let id = self.add(name, OperatorKind::Source { data }, Udf::None, vec![]);
        self.operators[id.0].estimated_records = Some(estimate);
        id
    }

    /// Adds a `Map` operator.
    pub fn map(&mut self, name: &str, input: OperatorId, udf: Arc<dyn MapFunction>) -> OperatorId {
        self.add(name, OperatorKind::Map, Udf::Map(udf), vec![input])
    }

    /// Adds a `Reduce` operator grouping on `key`.
    pub fn reduce(
        &mut self,
        name: &str,
        input: OperatorId,
        key: KeyFields,
        udf: Arc<dyn ReduceFunction>,
    ) -> OperatorId {
        self.add(
            name,
            OperatorKind::Reduce { key },
            Udf::Reduce(udf),
            vec![input],
        )
    }

    /// Adds a `Match` (equi-join) operator.
    pub fn match_join(
        &mut self,
        name: &str,
        left: OperatorId,
        right: OperatorId,
        left_key: KeyFields,
        right_key: KeyFields,
        udf: Arc<dyn MatchFunction>,
    ) -> OperatorId {
        self.add(
            name,
            OperatorKind::Match {
                left_key,
                right_key,
            },
            Udf::Match(udf),
            vec![left, right],
        )
    }

    /// Adds a `Cross` (Cartesian product) operator.
    pub fn cross(
        &mut self,
        name: &str,
        left: OperatorId,
        right: OperatorId,
        udf: Arc<dyn CrossFunction>,
    ) -> OperatorId {
        self.add(
            name,
            OperatorKind::Cross,
            Udf::Cross(udf),
            vec![left, right],
        )
    }

    /// Adds a `CoGroup` operator (outer: groups may be empty on either side).
    pub fn cogroup(
        &mut self,
        name: &str,
        left: OperatorId,
        right: OperatorId,
        left_key: KeyFields,
        right_key: KeyFields,
        udf: Arc<dyn CoGroupFunction>,
    ) -> OperatorId {
        self.add(
            name,
            OperatorKind::CoGroup {
                left_key,
                right_key,
                inner: false,
            },
            Udf::CoGroup(udf),
            vec![left, right],
        )
    }

    /// Adds an `InnerCoGroup` operator (groups missing on either side are
    /// dropped), as used by the incremental Connected Components dataflow.
    pub fn inner_cogroup(
        &mut self,
        name: &str,
        left: OperatorId,
        right: OperatorId,
        left_key: KeyFields,
        right_key: KeyFields,
        udf: Arc<dyn CoGroupFunction>,
    ) -> OperatorId {
        self.add(
            name,
            OperatorKind::CoGroup {
                left_key,
                right_key,
                inner: true,
            },
            Udf::CoGroup(udf),
            vec![left, right],
        )
    }

    /// Adds a bag union of `inputs`.
    pub fn union(&mut self, name: &str, inputs: Vec<OperatorId>) -> OperatorId {
        self.add(name, OperatorKind::Union, Udf::None, inputs)
    }

    /// Adds a named sink consuming `input`.
    pub fn sink(&mut self, name: &str, input: OperatorId) -> OperatorId {
        self.add(
            name,
            OperatorKind::Sink {
                name: name.to_owned(),
            },
            Udf::None,
            vec![input],
        )
    }

    /// Sets the optimizer cardinality hint of an operator.
    pub fn set_estimated_records(&mut self, op: OperatorId, records: usize) {
        self.operators[op.0].estimated_records = Some(records);
    }

    /// Replaces the data of a source operator (used by the iteration runtime
    /// to feed the next partial solution back into the step plan).
    pub fn replace_source_data(&mut self, op: OperatorId, data: Arc<Vec<Record>>) -> Result<()> {
        let operator = self
            .operators
            .get_mut(op.0)
            .ok_or(DataflowError::UnknownOperator(op.0))?;
        match &mut operator.kind {
            OperatorKind::Source { data: slot } => {
                operator.estimated_records = Some(data.len());
                *slot = data;
                Ok(())
            }
            _ => Err(DataflowError::InvalidPlan(format!(
                "operator '{}' is not a source",
                operator.name
            ))),
        }
    }

    /// The operator with the given id.
    pub fn operator(&self, id: OperatorId) -> &Operator {
        &self.operators[id.0]
    }

    /// All operators in insertion order.
    pub fn operators(&self) -> &[Operator] {
        &self.operators
    }

    /// Number of operators in the plan.
    pub fn len(&self) -> usize {
        self.operators.len()
    }

    /// True if the plan has no operators.
    pub fn is_empty(&self) -> bool {
        self.operators.is_empty()
    }

    /// Ids of all sink operators.
    pub fn sinks(&self) -> Vec<OperatorId> {
        self.operators
            .iter()
            .filter(|op| matches!(op.kind, OperatorKind::Sink { .. }))
            .map(|op| op.id)
            .collect()
    }

    /// Looks up a sink by name.
    pub fn sink_by_name(&self, name: &str) -> Option<OperatorId> {
        self.operators.iter().find_map(|op| match &op.kind {
            OperatorKind::Sink { name: n } if n == name => Some(op.id),
            _ => None,
        })
    }

    /// Ids of the operators that consume the output of `id`.
    pub fn consumers(&self, id: OperatorId) -> Vec<OperatorId> {
        self.operators
            .iter()
            .filter(|op| op.inputs.contains(&id))
            .map(|op| op.id)
            .collect()
    }

    /// Validates the plan: input arities match the contracts, all referenced
    /// operators exist, and the graph is acyclic.  Returns the operators in a
    /// topological order suitable for execution.
    pub fn validate(&self) -> Result<Vec<OperatorId>> {
        for op in &self.operators {
            if let Some(expected) = op.kind.expected_inputs() {
                if op.inputs.len() != expected {
                    return Err(DataflowError::InvalidArity {
                        operator: op.name.clone(),
                        expected,
                        actual: op.inputs.len(),
                    });
                }
            } else if op.inputs.is_empty() {
                return Err(DataflowError::InvalidArity {
                    operator: op.name.clone(),
                    expected: 1,
                    actual: 0,
                });
            }
            for input in &op.inputs {
                if input.0 >= self.operators.len() {
                    return Err(DataflowError::UnknownOperator(input.0));
                }
            }
        }
        self.topological_order()
    }

    /// Kahn's algorithm over the operator DAG.
    pub fn topological_order(&self) -> Result<Vec<OperatorId>> {
        let n = self.operators.len();
        let mut in_degree = vec![0usize; n];
        for op in &self.operators {
            in_degree[op.id.0] = op.inputs.len();
        }
        let mut queue: VecDeque<OperatorId> = (0..n)
            .filter(|&i| in_degree[i] == 0)
            .map(OperatorId)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for consumer in self.consumers(id) {
                in_degree[consumer.0] -= 1;
                if in_degree[consumer.0] == 0 {
                    queue.push_back(consumer);
                }
            }
        }
        if order.len() != n {
            return Err(DataflowError::CyclicPlan);
        }
        Ok(order)
    }

    /// The set of operators lying on any path from `from` to a sink, i.e. the
    /// downstream closure of `from` (including `from` itself).  The iteration
    /// optimizer uses this to compute the *dynamic data path* — everything
    /// downstream of the partial-solution input processes different data in
    /// every iteration (Section 4.1).
    pub fn downstream_closure(&self, from: OperatorId) -> Vec<OperatorId> {
        let mut visited = vec![false; self.operators.len()];
        let mut stack = vec![from];
        let mut result = Vec::new();
        while let Some(id) = stack.pop() {
            if visited[id.0] {
                continue;
            }
            visited[id.0] = true;
            result.push(id);
            for consumer in self.consumers(id) {
                stack.push(consumer);
            }
        }
        result.sort();
        result
    }

    /// Renders the plan as an indented textual tree rooted at the sinks,
    /// useful for debugging and for golden-plan tests in the optimizer.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        for sink in self.sinks() {
            self.explain_rec(sink, 0, &mut out);
        }
        out
    }

    fn explain_rec(&self, id: OperatorId, depth: usize, out: &mut String) {
        let op = self.operator(id);
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!("{} [{}]\n", op.name, op.kind.contract_name()));
        for &input in &op.inputs {
            self.explain_rec(input, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contracts::{Collector, MapClosure};

    fn identity_map() -> Arc<dyn MapFunction> {
        Arc::new(MapClosure(|r: &Record, out: &mut Collector| {
            out.collect(r.clone())
        }))
    }

    #[test]
    fn build_and_validate_linear_plan() {
        let mut plan = Plan::new();
        let src = plan.source("src", vec![Record::pair(1, 2)]);
        let map = plan.map("id", src, identity_map());
        let sink = plan.sink("out", map);
        let order = plan.validate().unwrap();
        assert_eq!(order, vec![src, map, sink]);
        assert_eq!(plan.sink_by_name("out"), Some(sink));
        assert_eq!(plan.sink_by_name("nope"), None);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut plan = Plan::new();
        let src = plan.source("src", vec![]);
        // Manually build a broken Match with one input.
        let bad = plan.add(
            "bad-join",
            OperatorKind::Match {
                left_key: vec![0],
                right_key: vec![0],
            },
            Udf::None,
            vec![src],
        );
        let _ = bad;
        let err = plan.validate().unwrap_err();
        assert!(matches!(err, DataflowError::InvalidArity { .. }));
    }

    #[test]
    fn union_requires_at_least_one_input() {
        let mut plan = Plan::new();
        plan.union("u", vec![]);
        assert!(plan.validate().is_err());
    }

    #[test]
    fn cycle_detection() {
        let mut plan = Plan::new();
        let src = plan.source("src", vec![]);
        let a = plan.map("a", src, identity_map());
        let b = plan.map("b", a, identity_map());
        // Introduce a cycle a <- b by hand.
        plan.operators[a.0].inputs = vec![b];
        assert_eq!(
            plan.topological_order().unwrap_err(),
            DataflowError::CyclicPlan
        );
    }

    #[test]
    fn downstream_closure_covers_all_paths() {
        let mut plan = Plan::new();
        let s1 = plan.source("s1", vec![]);
        let s2 = plan.source("s2", vec![]);
        let join = plan.match_join(
            "join",
            s1,
            s2,
            vec![0],
            vec![0],
            Arc::new(crate::contracts::MatchClosure(
                |l: &Record, _r: &Record, out: &mut Collector| out.collect(l.clone()),
            )),
        );
        let sink = plan.sink("out", join);
        let closure = plan.downstream_closure(s1);
        assert_eq!(closure, vec![s1, join, sink]);
        let closure2 = plan.downstream_closure(s2);
        assert!(closure2.contains(&join));
        assert!(!closure2.contains(&s1));
    }

    #[test]
    fn replace_source_data_swaps_records() {
        let mut plan = Plan::new();
        let src = plan.source("src", vec![Record::pair(1, 1)]);
        plan.replace_source_data(src, Arc::new(vec![Record::pair(2, 2), Record::pair(3, 3)]))
            .unwrap();
        match &plan.operator(src).kind {
            OperatorKind::Source { data } => assert_eq!(data.len(), 2),
            _ => panic!("not a source"),
        }
        assert_eq!(plan.operator(src).estimated_records, Some(2));
    }

    #[test]
    fn replace_source_data_rejects_non_sources() {
        let mut plan = Plan::new();
        let src = plan.source("src", vec![]);
        let map = plan.map("m", src, identity_map());
        assert!(plan.replace_source_data(map, Arc::new(vec![])).is_err());
    }

    #[test]
    fn explain_mentions_contracts() {
        let mut plan = Plan::new();
        let src = plan.source("ranks", vec![]);
        let map = plan.map("scale", src, identity_map());
        plan.sink("out", map);
        let text = plan.explain();
        assert!(text.contains("scale [Map]"));
        assert!(text.contains("ranks [Source]"));
    }

    #[test]
    fn record_at_a_time_classification() {
        assert!(OperatorKind::Map.is_record_at_a_time());
        assert!(OperatorKind::Match {
            left_key: vec![0],
            right_key: vec![0]
        }
        .is_record_at_a_time());
        assert!(!OperatorKind::Reduce { key: vec![0] }.is_record_at_a_time());
        assert!(!OperatorKind::CoGroup {
            left_key: vec![0],
            right_key: vec![0],
            inner: true
        }
        .is_record_at_a_time());
    }
}
