//! Bounded, credit-based channels for backpressure.
//!
//! The asynchronous microstep runtime historically exchanged records through
//! unbounded `std::sync::mpsc` queues — the one place the memory budget of
//! [`crate::spill`] did not reach: an adversarial expansion fan-out could
//! enqueue records faster than consumers drain them and exhaust memory while
//! every spill test stayed green.
//!
//! A [`credit_channel`] bounds that queue with *credits*. Every sender clone
//! is an independent **edge** with a fixed pool of `credits`: enqueueing an
//! item acquires one credit from the sending edge's pool, and the credit
//! returns to the pool when the receiver dequeues the item. A sender whose
//! pool is exhausted either observes [`TrySendError::Full`] (non-blocking) or
//! blocks with a bounded deadline ([`CreditSender::send`]) so that a true
//! distributed deadlock surfaces as a typed [`SendError::Timeout`] instead of
//! a hang — the same discipline the transport layer uses for
//! `CommError::Timeout`.
//!
//! Because credits are released at *dequeue* time, a consumer that panics
//! while processing an item it already received leaks no credits: the act of
//! receiving returned the credit, and dropping the receiver wakes all blocked
//! senders with [`SendError::Disconnected`].
//!
//! The queue high-water mark ([`CreditReceiver::high_water`]) records the
//! maximum number of credits any single edge ever had in flight; by
//! construction it never exceeds the configured credit count, which is what
//! the backpressure smoke tests assert.
//!
//! The credit count is configured programmatically or through the
//! `SPINNING_CHANNEL_CREDITS` environment variable (see
//! [`channel_credits_from_env`]).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

pub use comm::{
    channel_credits_from_env, parse_channel_credits, timeout_from_env, CHANNEL_CREDITS_ENV,
};

/// One sender→receiver edge: the number of credits currently held by items
/// this edge has enqueued but the receiver has not yet dequeued.
///
/// The counter is only ever mutated while holding the channel mutex; the
/// atomic exists so the per-edge state can live behind an `Arc` shared by the
/// sender and the queued items without its own lock.
#[derive(Debug, Default)]
struct Edge {
    in_use: AtomicUsize,
}

struct ChannelState<T> {
    /// FIFO of `(owning edge, item)`; popping returns the credit to the edge.
    queue: VecDeque<(Arc<Edge>, T)>,
    /// Maximum credits any single edge ever had in flight.
    high_water: usize,
    /// Live `CreditSender` clones.
    senders: usize,
    /// Cleared when the receiver drops; blocked senders then fail fast.
    receiver_alive: bool,
}

struct ChannelCore<T> {
    credits: usize,
    state: Mutex<ChannelState<T>>,
    recv_cv: Condvar,
    send_cv: Condvar,
}

/// Error returned by the blocking [`CreditSender::send`]; carries the item
/// back so callers can retry or account for it.
#[derive(Debug, PartialEq, Eq)]
pub enum SendError<T> {
    /// The bounded wait for a credit expired — the deadlock detector
    /// tripping instead of hanging forever.
    Timeout(T),
    /// The receiver was dropped; no item will ever be consumed again.
    Disconnected(T),
}

/// Error returned by the non-blocking [`CreditSender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The sending edge has no free credits right now.
    Full(T),
    /// The receiver was dropped.
    Disconnected(T),
}

/// Error returned by [`CreditReceiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived before the deadline.
    Timeout,
    /// Every sender was dropped and the queue is empty.
    Disconnected,
}

/// Error returned by [`CreditReceiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty.
    Empty,
    /// Every sender was dropped and the queue is empty.
    Disconnected,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::Timeout(_) => write!(f, "timed out waiting for a channel credit"),
            SendError::Disconnected(_) => write!(f, "credit channel receiver disconnected"),
        }
    }
}

/// Sending half of a credit channel.
///
/// Cloning creates a **new edge with its own full credit pool** — the bound
/// is per sender→receiver edge, matching the per-channel transport windows.
pub struct CreditSender<T> {
    core: Arc<ChannelCore<T>>,
    edge: Arc<Edge>,
    timeout: Duration,
}

/// Receiving half of a credit channel. Single consumer; dropping it wakes
/// every blocked sender with [`SendError::Disconnected`].
pub struct CreditReceiver<T> {
    core: Arc<ChannelCore<T>>,
}

/// Creates a bounded channel where each sender edge may have at most
/// `credits` items in flight (enqueued but not yet dequeued).
///
/// `credits` is clamped to at least 1. `timeout` bounds the blocking
/// [`CreditSender::send`]: a sender that cannot acquire a credit within it
/// gets a typed [`SendError::Timeout`] instead of hanging.
pub fn credit_channel<T>(
    credits: usize,
    timeout: Duration,
) -> (CreditSender<T>, CreditReceiver<T>) {
    let core = Arc::new(ChannelCore {
        credits: credits.max(1),
        state: Mutex::new(ChannelState {
            queue: VecDeque::new(),
            high_water: 0,
            senders: 1,
            receiver_alive: true,
        }),
        recv_cv: Condvar::new(),
        send_cv: Condvar::new(),
    });
    (
        CreditSender {
            core: Arc::clone(&core),
            edge: Arc::new(Edge::default()),
            timeout,
        },
        CreditReceiver { core },
    )
}

impl<T> CreditSender<T> {
    /// The per-edge credit bound this channel was created with.
    pub fn credits(&self) -> usize {
        self.core.credits
    }

    fn push_locked(&self, state: &mut ChannelState<T>, item: T) {
        // Only mutated under the channel mutex, so load+store is race-free.
        let used = self.edge.in_use.load(Ordering::Relaxed) + 1;
        self.edge.in_use.store(used, Ordering::Relaxed);
        state.high_water = state.high_water.max(used);
        state.queue.push_back((Arc::clone(&self.edge), item));
        self.core.recv_cv.notify_one();
    }

    /// Enqueues `item` if the edge has a free credit, without blocking.
    pub fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
        let mut state = self.core.state.lock().unwrap();
        if !state.receiver_alive {
            return Err(TrySendError::Disconnected(item));
        }
        if self.edge.in_use.load(Ordering::Relaxed) >= self.core.credits {
            return Err(TrySendError::Full(item));
        }
        self.push_locked(&mut state, item);
        Ok(())
    }

    /// Enqueues `item`, blocking until a credit frees up, bounded by the
    /// channel timeout.
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        self.send_deadline(item, self.timeout)
    }

    /// Like [`CreditSender::send`] but with an explicit bound on the wait.
    pub fn send_deadline(&self, item: T, wait: Duration) -> Result<(), SendError<T>> {
        let deadline = Instant::now() + wait;
        let mut state = self.core.state.lock().unwrap();
        loop {
            if !state.receiver_alive {
                return Err(SendError::Disconnected(item));
            }
            if self.edge.in_use.load(Ordering::Relaxed) < self.core.credits {
                self.push_locked(&mut state, item);
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SendError::Timeout(item));
            }
            let (guard, _) = self
                .core
                .send_cv
                .wait_timeout(state, deadline - now)
                .unwrap();
            state = guard;
        }
    }
}

impl<T> Clone for CreditSender<T> {
    fn clone(&self) -> CreditSender<T> {
        let mut state = self.core.state.lock().unwrap();
        state.senders += 1;
        drop(state);
        CreditSender {
            core: Arc::clone(&self.core),
            edge: Arc::new(Edge::default()),
            timeout: self.timeout,
        }
    }
}

impl<T> Drop for CreditSender<T> {
    fn drop(&mut self) {
        let mut state = self.core.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            // The receiver may be waiting for "a record or every sender gone".
            self.core.recv_cv.notify_all();
        }
    }
}

impl<T> CreditReceiver<T> {
    fn pop_locked(&self, state: &mut ChannelState<T>) -> Option<T> {
        state.queue.pop_front().map(|(edge, item)| {
            let used = edge.in_use.load(Ordering::Relaxed);
            edge.in_use.store(used.saturating_sub(1), Ordering::Relaxed);
            // Any edge may be blocked; the freed credit belongs to exactly
            // one of them, so wake them all and let each re-check its pool.
            self.core.send_cv.notify_all();
            item
        })
    }

    /// Dequeues an item if one is ready, returning its credit to the sending
    /// edge.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.core.state.lock().unwrap();
        match self.pop_locked(&mut state) {
            Some(item) => Ok(item),
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Dequeues an item, waiting up to `timeout` for one to arrive.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.core.state.lock().unwrap();
        loop {
            if let Some(item) = self.pop_locked(&mut state) {
                return Ok(item);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .core
                .recv_cv
                .wait_timeout(state, deadline - now)
                .unwrap();
            state = guard;
        }
    }

    /// Maximum credits any single sending edge ever had in flight — the queue
    /// high-water mark. Never exceeds the configured credit count.
    pub fn high_water(&self) -> usize {
        self.core.state.lock().unwrap().high_water
    }

    /// The per-edge credit bound this channel was created with.
    pub fn credits(&self) -> usize {
        self.core.credits
    }
}

impl<T> Drop for CreditReceiver<T> {
    fn drop(&mut self) {
        let mut state = self.core.state.lock().unwrap();
        state.receiver_alive = false;
        state.queue.clear();
        self.core.send_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    const SHORT: Duration = Duration::from_millis(20);
    const LONG: Duration = Duration::from_secs(5);

    #[test]
    fn roundtrip_preserves_fifo_order() {
        let (tx, rx) = credit_channel(8, LONG);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(rx.recv_timeout(LONG).unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn exhausted_edge_reports_full_then_timeout() {
        let (tx, rx) = credit_channel(2, SHORT);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(tx.send(3), Err(SendError::Timeout(3)));
        // Draining one item returns a credit.
        assert_eq!(rx.recv_timeout(LONG).unwrap(), 1);
        tx.send(3).unwrap();
        assert_eq!(rx.high_water(), 2);
    }

    #[test]
    fn each_sender_clone_gets_its_own_pool() {
        let (tx_a, rx) = credit_channel(1, SHORT);
        let tx_b = tx_a.clone();
        tx_a.send("a").unwrap();
        // Edge A is full but edge B still has its credit.
        assert_eq!(tx_a.try_send("a2"), Err(TrySendError::Full("a2")));
        tx_b.send("b").unwrap();
        assert_eq!(rx.recv_timeout(LONG).unwrap(), "a");
        assert_eq!(rx.recv_timeout(LONG).unwrap(), "b");
        assert_eq!(rx.high_water(), 1);
    }

    #[test]
    fn blocked_sender_wakes_when_consumer_drains() {
        let (tx, rx) = credit_channel(1, LONG);
        tx.send(0u64).unwrap();
        let handle = thread::spawn(move || tx.send(1u64));
        thread::sleep(Duration::from_millis(30));
        assert_eq!(rx.recv_timeout(LONG).unwrap(), 0);
        handle.join().unwrap().unwrap();
        assert_eq!(rx.recv_timeout(LONG).unwrap(), 1);
    }

    #[test]
    fn receiver_drop_disconnects_blocked_sender() {
        let (tx, rx) = credit_channel(1, LONG);
        tx.send(0u64).unwrap();
        let handle = thread::spawn(move || tx.send(1u64));
        thread::sleep(Duration::from_millis(30));
        drop(rx);
        assert_eq!(handle.join().unwrap(), Err(SendError::Disconnected(1)));
    }

    #[test]
    fn sender_drop_disconnects_waiting_receiver() {
        let (tx, rx) = credit_channel::<u64>(1, LONG);
        let handle = thread::spawn(move || rx.recv_timeout(LONG));
        thread::sleep(Duration::from_millis(30));
        drop(tx);
        assert_eq!(handle.join().unwrap(), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn credits_are_released_on_dequeue_not_on_processing() {
        // A consumer that takes an item and then dies does not strand the
        // item's credit: receiving it already returned the credit.
        let (tx, rx) = credit_channel(1, LONG);
        tx.send(1u64).unwrap();
        let _ = rx.recv_timeout(LONG).unwrap();
        // Pretend the consumer panicked while processing; the edge can still
        // send because the dequeue freed its credit.
        tx.try_send(2).unwrap();
    }

    #[test]
    fn high_water_never_exceeds_credits() {
        let (tx, rx) = credit_channel(2, LONG);
        for i in 0..10u64 {
            if tx.try_send(i).is_err() {
                rx.try_recv().unwrap();
                tx.try_send(i).unwrap();
            }
        }
        assert_eq!(rx.high_water(), 2);
    }
}
