//! Parallelization Contracts (PACTs): the second-order functions that wrap
//! user-defined first-order functions.
//!
//! The contract an operator implements tells the system how its input may be
//! partitioned for parallel execution (Section 3 of the paper): `Map` records
//! are independent, `Reduce` groups records sharing a key, `Match` builds
//! equi-join pairs of two inputs, `Cross` builds the Cartesian product, and
//! `CoGroup` groups both inputs by key.  `InnerCoGroup` is the inner-join
//! flavour of `CoGroup` used by the incremental Connected Components dataflow
//! (Section 5.1): groups whose key is missing on either side are dropped.

use crate::record::Record;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Receives records as they are emitted, instead of buffering them.
///
/// A [`Collector`] built with [`Collector::with_sink`] forwards every
/// collected record here — the hook the streaming (chained) executor uses to
/// push records downstream page by page while the user function is still
/// running.  Emission is infallible from the UDF's point of view; a sink
/// that fails downstream records the error internally and reports it when
/// the runtime takes it back.
pub trait RecordSink: Send {
    /// Receives one emitted record.
    fn push(&mut self, record: Record);
    /// Recovers the concrete sink once the operator finished emitting
    /// (trait objects cannot be downcast without an `Any` hop).
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

/// Receives the records a user-defined function emits.
///
/// A fresh collector is handed to the UDF for every invocation; everything
/// pushed into it becomes part of the operator's output partition — either
/// buffered in memory (the default) or streamed straight into a
/// [`RecordSink`] ([`Collector::with_sink`]).
#[derive(Default)]
pub struct Collector {
    buffer: Vec<Record>,
    sink: Option<Box<dyn RecordSink>>,
    collected: usize,
}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collector")
            .field("collected", &self.collected)
            .field("buffered", &self.buffer.len())
            .field("streaming", &self.sink.is_some())
            .finish()
    }
}

impl Collector {
    /// Creates an empty (buffering) collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// Creates a collector that streams every record into `sink` instead of
    /// buffering it.
    pub fn with_sink(sink: Box<dyn RecordSink>) -> Self {
        Collector {
            buffer: Vec::new(),
            sink: Some(sink),
            collected: 0,
        }
    }

    /// Emits one record.
    #[inline]
    pub fn collect(&mut self, record: Record) {
        self.collected += 1;
        match &mut self.sink {
            Some(sink) => sink.push(record),
            None => self.buffer.push(record),
        }
    }

    /// Emits every record of an iterator.
    pub fn collect_all<I: IntoIterator<Item = Record>>(&mut self, records: I) {
        for record in records {
            self.collect(record);
        }
    }

    /// Number of records collected so far (buffered or streamed).
    pub fn len(&self) -> usize {
        self.collected
    }

    /// True if nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.collected == 0
    }

    /// Consumes the collector, returning the buffered records (empty for a
    /// streaming collector — its records already left through the sink).
    pub fn into_records(self) -> Vec<Record> {
        self.buffer
    }

    /// Drains the buffered records, leaving the collector reusable.
    pub fn drain(&mut self) -> Vec<Record> {
        self.collected = self.buffer.len();
        let drained = std::mem::take(&mut self.buffer);
        self.collected = 0;
        drained
    }

    /// Takes the streaming sink back out (None for buffering collectors).
    pub fn take_sink(&mut self) -> Option<Box<dyn RecordSink>> {
        self.sink.take()
    }
}

/// First-order function for the `Map` contract: invoked once per record.
pub trait MapFunction: Send + Sync {
    /// Processes one record, emitting zero or more records.
    fn map(&self, record: &Record, out: &mut Collector);
}

/// First-order function for the `Reduce` contract: invoked once per key group.
pub trait ReduceFunction: Send + Sync {
    /// Processes the group of records sharing `key`.
    fn reduce(&self, key: &[Value], group: &[Record], out: &mut Collector);
}

/// First-order function for the `Match` contract: invoked once per pair of
/// records with equal keys (an equi-join).
pub trait MatchFunction: Send + Sync {
    /// Processes one joined pair.
    fn join(&self, left: &Record, right: &Record, out: &mut Collector);
}

/// First-order function for the `Cross` contract: invoked once per pair of
/// records from the Cartesian product of both inputs.
pub trait CrossFunction: Send + Sync {
    /// Processes one pair of the cross product.
    fn cross(&self, left: &Record, right: &Record, out: &mut Collector);
}

/// First-order function for the `CoGroup` / `InnerCoGroup` contracts: invoked
/// once per key with all records of both inputs that carry that key.
pub trait CoGroupFunction: Send + Sync {
    /// Processes the pair of groups sharing `key`.  For the plain `CoGroup`
    /// contract either side may be empty; for `InnerCoGroup` both sides are
    /// guaranteed non-empty.
    fn cogroup(&self, key: &[Value], left: &[Record], right: &[Record], out: &mut Collector);
}

// --- Closure adapters -------------------------------------------------------
//
// Writing a struct per UDF is verbose; these adapters let plans be assembled
// from closures while keeping the trait objects the runtime works with.

/// Wraps a closure as a [`MapFunction`].
pub struct MapClosure<F>(pub F);

impl<F> MapFunction for MapClosure<F>
where
    F: Fn(&Record, &mut Collector) + Send + Sync,
{
    fn map(&self, record: &Record, out: &mut Collector) {
        (self.0)(record, out)
    }
}

/// Wraps a closure as a [`ReduceFunction`].
pub struct ReduceClosure<F>(pub F);

impl<F> ReduceFunction for ReduceClosure<F>
where
    F: Fn(&[Value], &[Record], &mut Collector) + Send + Sync,
{
    fn reduce(&self, key: &[Value], group: &[Record], out: &mut Collector) {
        (self.0)(key, group, out)
    }
}

/// Wraps a closure as a [`MatchFunction`].
pub struct MatchClosure<F>(pub F);

impl<F> MatchFunction for MatchClosure<F>
where
    F: Fn(&Record, &Record, &mut Collector) + Send + Sync,
{
    fn join(&self, left: &Record, right: &Record, out: &mut Collector) {
        (self.0)(left, right, out)
    }
}

/// Wraps a closure as a [`CrossFunction`].
pub struct CrossClosure<F>(pub F);

impl<F> CrossFunction for CrossClosure<F>
where
    F: Fn(&Record, &Record, &mut Collector) + Send + Sync,
{
    fn cross(&self, left: &Record, right: &Record, out: &mut Collector) {
        (self.0)(left, right, out)
    }
}

/// Wraps a closure as a [`CoGroupFunction`].
pub struct CoGroupClosure<F>(pub F);

impl<F> CoGroupFunction for CoGroupClosure<F>
where
    F: Fn(&[Value], &[Record], &[Record], &mut Collector) + Send + Sync,
{
    fn cogroup(&self, key: &[Value], left: &[Record], right: &[Record], out: &mut Collector) {
        (self.0)(key, left, right, out)
    }
}

/// A shareable, type-erased user-defined function attached to an operator.
#[derive(Clone)]
pub enum Udf {
    /// No user code (sources, sinks, unions, caches).
    None,
    /// A `Map` first-order function.
    Map(Arc<dyn MapFunction>),
    /// A `Reduce` first-order function.
    Reduce(Arc<dyn ReduceFunction>),
    /// A `Match` first-order function.
    Match(Arc<dyn MatchFunction>),
    /// A `Cross` first-order function.
    Cross(Arc<dyn CrossFunction>),
    /// A `CoGroup` / `InnerCoGroup` first-order function.
    CoGroup(Arc<dyn CoGroupFunction>),
}

impl fmt::Debug for Udf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Udf::None => "None",
            Udf::Map(_) => "Map",
            Udf::Reduce(_) => "Reduce",
            Udf::Match(_) => "Match",
            Udf::Cross(_) => "Cross",
            Udf::CoGroup(_) => "CoGroup",
        };
        write!(f, "Udf::{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_accumulates_and_drains() {
        let mut c = Collector::new();
        assert!(c.is_empty());
        c.collect(Record::pair(1, 2));
        c.collect_all(vec![Record::pair(3, 4), Record::pair(5, 6)]);
        assert_eq!(c.len(), 3);
        let drained = c.drain();
        assert_eq!(drained.len(), 3);
        assert!(c.is_empty());
    }

    #[test]
    fn map_closure_adapts() {
        let udf = MapClosure(|r: &Record, out: &mut Collector| {
            out.collect(Record::pair(r.long(0) * 2, r.long(1)));
        });
        let mut out = Collector::new();
        udf.map(&Record::pair(4, 7), &mut out);
        assert_eq!(out.into_records()[0].long(0), 8);
    }

    #[test]
    fn reduce_closure_sees_whole_group() {
        let udf = ReduceClosure(|key: &[Value], group: &[Record], out: &mut Collector| {
            let sum: i64 = group.iter().map(|r| r.long(1)).sum();
            out.collect(Record::pair(key[0].as_long(), sum));
        });
        let mut out = Collector::new();
        udf.reduce(
            &[Value::Long(1)],
            &[Record::pair(1, 10), Record::pair(1, 5)],
            &mut out,
        );
        assert_eq!(out.into_records()[0].long(1), 15);
    }

    #[test]
    fn cogroup_closure_receives_both_sides() {
        let udf = CoGroupClosure(
            |_k: &[Value], l: &[Record], r: &[Record], out: &mut Collector| {
                out.collect(Record::pair(l.len() as i64, r.len() as i64));
            },
        );
        let mut out = Collector::new();
        udf.cogroup(&[Value::Long(1)], &[Record::pair(1, 1)], &[], &mut out);
        assert_eq!(out.into_records()[0].long(1), 0);
    }

    #[test]
    fn udf_debug_names_variant() {
        let udf = Udf::Map(Arc::new(MapClosure(|_: &Record, _: &mut Collector| {})));
        assert_eq!(format!("{udf:?}"), "Udf::Map");
    }
}
