//! Deterministic, seed-driven fault injection.
//!
//! Everything the runtime does that can fail in the real world — writing a
//! spilled run, reading it back, persisting a checkpoint, running a worker
//! task — goes through one injectable decision point: a [`FaultInjector`]
//! carried by the configuration objects.  The injector is **deterministic**:
//! whether the k-th event at a [`FaultSite`] fails is a pure function of
//! `(seed, site, k)`, so a failing run can be replayed exactly by re-running
//! with the same seed, and a property test can kill a run at a chosen point
//! with [`FaultInjector::failing_nth`].
//!
//! The default injector is *disabled* and its checks compile down to one
//! `Option` test — production paths pay nothing.  CI smoke jobs enable
//! injection through the environment ([`FAULT_SEED_ENV`] /
//! [`FAULT_RATE_ENV`]) without touching any call site.

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Environment variable carrying the injection seed (a `u64`; defaults to 0
/// when only the rate is set).
pub const FAULT_SEED_ENV: &str = "SPINNING_FAULT_SEED";

/// Environment variable enabling injection and carrying the per-site fault
/// probabilities.  Either one uniform rate (`0.01`) or a comma-separated
/// per-site list (`spill_read=0.01,worker_panic=0.002`); sites not named get
/// rate 0.  Unset (or empty) means injection is disabled.
pub const FAULT_RATE_ENV: &str = "SPINNING_FAULT_RATE";

/// The places the runtime consults the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Flushing sealed pages to disk as a spilled run.
    SpillWrite,
    /// Opening or streaming a spilled run back.
    SpillRead,
    /// Persisting a checkpoint (data files or manifest).
    CheckpointWrite,
    /// Reading a checkpoint back during recovery.
    CheckpointRead,
    /// Dispatching a worker task on the pool (the injected failure is a task
    /// panic, not an I/O error).
    WorkerPanic,
    /// Writing a frame to a transport connection (the injected failure is a
    /// dropped connection — the peer observes it too).
    ConnDrop,
}

/// All sites, in index order.
pub const FAULT_SITES: [FaultSite; 6] = [
    FaultSite::SpillWrite,
    FaultSite::SpillRead,
    FaultSite::CheckpointWrite,
    FaultSite::CheckpointRead,
    FaultSite::WorkerPanic,
    FaultSite::ConnDrop,
];

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::SpillWrite => 0,
            FaultSite::SpillRead => 1,
            FaultSite::CheckpointWrite => 2,
            FaultSite::CheckpointRead => 3,
            FaultSite::WorkerPanic => 4,
            FaultSite::ConnDrop => 5,
        }
    }

    /// The site's name in [`FAULT_RATE_ENV`] and in error messages.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::SpillWrite => "spill_write",
            FaultSite::SpillRead => "spill_read",
            FaultSite::CheckpointWrite => "checkpoint_write",
            FaultSite::CheckpointRead => "checkpoint_read",
            FaultSite::WorkerPanic => "worker_panic",
            FaultSite::ConnDrop => "conn_drop",
        }
    }

    fn from_label(label: &str) -> Option<FaultSite> {
        FAULT_SITES.iter().copied().find(|s| s.label() == label)
    }

    /// Domain-separates the per-site event streams under one seed.
    fn salt(self) -> u64 {
        // Arbitrary odd constants; only distinctness matters.
        [
            0x9e37_79b9_7f4a_7c15,
            0xbf58_476d_1ce4_e5b9,
            0x94d0_49bb_1331_11eb,
            0xd6e8_feb8_6659_fd93,
            0xa076_1d64_78bd_642f,
            0xc2b2_ae3d_27d4_eb4f,
        ][self.index()]
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// SplitMix64 — the standard 64-bit avalanche generator; one application per
/// decision keeps the decisions independent and replayable.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[derive(Debug)]
struct Inner {
    seed: u64,
    /// Per-site fault probability in [0, 1].
    rates: [f64; 6],
    /// Exact mode: fail precisely the n-th event (0-based) at one site and
    /// nothing else.  Takes precedence over the rates.
    exact: Option<(FaultSite, u64)>,
    /// Events seen per site (the event sequence number is what makes the
    /// decision deterministic, not wall-clock or thread timing).
    seen: [AtomicU64; 6],
    /// Faults injected per site.
    injected: [AtomicU64; 6],
}

/// The deterministic fault decision function.  Cloning shares the counters,
/// so one injector threaded through a whole run counts every event exactly
/// once; [`FaultInjector::default`] (and [`FaultInjector::disabled`]) is the
/// no-op injector.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<Inner>>,
}

/// The payload of an injected I/O error; [`io::Error::get_ref`] exposes it so
/// callers (and tests) can tell an injected fault from a real one.
#[derive(Debug)]
pub struct InjectedFault {
    /// Where the fault was injected.
    pub site: FaultSite,
    /// The event sequence number (0-based) that fired.
    pub event: u64,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected {} fault (event {})", self.site, self.event)
    }
}

impl std::error::Error for InjectedFault {}

impl FaultInjector {
    /// The no-op injector: every check passes.
    pub fn disabled() -> FaultInjector {
        FaultInjector { inner: None }
    }

    /// A seeded injector with all rates at zero; combine with
    /// [`FaultInjector::with_rate`] / [`FaultInjector::with_all_rates`].
    pub fn seeded(seed: u64) -> FaultInjector {
        FaultInjector {
            inner: Some(Arc::new(Inner {
                seed,
                rates: [0.0; 6],
                exact: None,
                seen: Default::default(),
                injected: Default::default(),
            })),
        }
    }

    /// An injector that fails exactly the `n`-th event (0-based) at `site`
    /// and nothing else — the precision tool of the recovery property tests.
    pub fn failing_nth(site: FaultSite, n: u64) -> FaultInjector {
        FaultInjector {
            inner: Some(Arc::new(Inner {
                seed: 0,
                rates: [0.0; 6],
                exact: Some((site, n)),
                seen: Default::default(),
                injected: Default::default(),
            })),
        }
    }

    /// Sets the fault probability of one site.  Counters reset (the injector
    /// is rebuilt), so configure rates before running.
    pub fn with_rate(self, site: FaultSite, rate: f64) -> FaultInjector {
        let (seed, mut rates, exact) = match &self.inner {
            Some(inner) => (inner.seed, inner.rates, inner.exact),
            None => (0, [0.0; 6], None),
        };
        rates[site.index()] = rate.clamp(0.0, 1.0);
        FaultInjector {
            inner: Some(Arc::new(Inner {
                seed,
                rates,
                exact,
                seen: Default::default(),
                injected: Default::default(),
            })),
        }
    }

    /// Sets every site's fault probability to `rate`.
    pub fn with_all_rates(mut self, rate: f64) -> FaultInjector {
        for site in FAULT_SITES {
            self = self.with_rate(site, rate);
        }
        self
    }

    /// Builds an injector from [`FAULT_SEED_ENV`] / [`FAULT_RATE_ENV`].
    /// Disabled unless the rate variable is set and non-empty; an
    /// unparseable value panics rather than silently disabling injection (a
    /// typo in a CI fault job must not quietly test nothing).
    pub fn from_env() -> FaultInjector {
        let raw = match std::env::var(FAULT_RATE_ENV) {
            Ok(raw) if !raw.trim().is_empty() => raw,
            _ => return FaultInjector::disabled(),
        };
        let seed = match std::env::var(FAULT_SEED_ENV) {
            Ok(raw) => raw
                .trim()
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("{FAULT_SEED_ENV} must be a u64, got {raw:?}")),
            Err(_) => 0,
        };
        let mut injector = FaultInjector::seeded(seed);
        if let Ok(rate) = raw.trim().parse::<f64>() {
            return injector.with_all_rates(rate);
        }
        for part in raw.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (label, rate) = part
                .split_once('=')
                .unwrap_or_else(|| panic!("{FAULT_RATE_ENV}: expected site=rate, got {part:?}"));
            let site = FaultSite::from_label(label.trim())
                .unwrap_or_else(|| panic!("{FAULT_RATE_ENV}: unknown fault site {label:?}"));
            let rate: f64 = rate
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("{FAULT_RATE_ENV}: bad rate in {part:?}"));
            injector = injector.with_rate(site, rate);
        }
        injector
    }

    /// True when this injector can ever fire.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Decides (and records) whether the next event at `site` faults.
    fn fires(&self, site: FaultSite) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let event = inner.seen[site.index()].fetch_add(1, Ordering::Relaxed);
        let fire = match inner.exact {
            Some((exact_site, n)) => exact_site == site && event == n,
            None => {
                let rate = inner.rates[site.index()];
                rate > 0.0 && {
                    let roll = splitmix64(inner.seed ^ site.salt() ^ event);
                    (roll as f64 / u64::MAX as f64) < rate
                }
            }
        };
        if fire {
            inner.injected[site.index()].fetch_add(1, Ordering::Relaxed);
            Some(event)
        } else {
            None
        }
    }

    /// I/O-shaped check: returns an [`InjectedFault`]-carrying
    /// [`io::Error`] when the site's next event faults.
    pub fn io_check(&self, site: FaultSite) -> io::Result<()> {
        match self.fires(site) {
            Some(event) => Err(io::Error::other(InjectedFault { site, event })),
            None => Ok(()),
        }
    }

    /// Panic-shaped check: panics (an injected worker crash) when the site's
    /// next event faults.  `label` names the dispatch site in the payload.
    pub fn panic_check(&self, site: FaultSite, label: &str) {
        if let Some(event) = self.fires(site) {
            panic!("injected worker panic at {label} (event {event})");
        }
    }

    /// Faults injected at one site so far.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.inner
            .as_ref()
            .map(|inner| inner.injected[site.index()].load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Faults injected across all sites.
    pub fn injected_total(&self) -> u64 {
        FAULT_SITES.iter().map(|&s| self.injected(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires() {
        let fault = FaultInjector::disabled();
        for _ in 0..1000 {
            fault.io_check(FaultSite::SpillWrite).unwrap();
            fault.panic_check(FaultSite::WorkerPanic, "test");
        }
        assert!(!fault.is_enabled());
        assert_eq!(fault.injected_total(), 0);
    }

    #[test]
    fn decisions_are_deterministic_per_seed_and_sequence() {
        let run = |seed| {
            let fault = FaultInjector::seeded(seed).with_rate(FaultSite::SpillRead, 0.2);
            (0..200)
                .map(|_| fault.io_check(FaultSite::SpillRead).is_err())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(7), run(7), "same seed must replay identically");
        assert_ne!(run(7), run(8), "different seeds must differ");
        assert!(run(7).iter().any(|&f| f), "rate 0.2 over 200 events fires");
        assert!(!run(7).iter().all(|&f| f), "rate 0.2 must not always fire");
    }

    #[test]
    fn sites_have_independent_event_streams() {
        let fault = FaultInjector::seeded(1)
            .with_rate(FaultSite::SpillRead, 1.0)
            .with_rate(FaultSite::SpillWrite, 0.0);
        assert!(fault.io_check(FaultSite::SpillWrite).is_ok());
        assert!(fault.io_check(FaultSite::SpillRead).is_err());
        assert_eq!(fault.injected(FaultSite::SpillRead), 1);
        assert_eq!(fault.injected(FaultSite::SpillWrite), 0);
    }

    #[test]
    fn failing_nth_fires_exactly_once() {
        let fault = FaultInjector::failing_nth(FaultSite::CheckpointWrite, 3);
        let fired: Vec<bool> = (0..10)
            .map(|_| fault.io_check(FaultSite::CheckpointWrite).is_err())
            .collect();
        assert_eq!(
            fired,
            (0..10).map(|i| i == 3).collect::<Vec<bool>>(),
            "only the 3rd event faults"
        );
        // Other sites are untouched.
        assert!(fault.io_check(FaultSite::SpillRead).is_ok());
        assert_eq!(fault.injected_total(), 1);
    }

    #[test]
    fn clones_share_the_event_counters() {
        let fault = FaultInjector::failing_nth(FaultSite::SpillRead, 1);
        let clone = fault.clone();
        assert!(fault.io_check(FaultSite::SpillRead).is_ok()); // event 0
        assert!(clone.io_check(FaultSite::SpillRead).is_err()); // event 1
        assert_eq!(fault.injected_total(), 1);
    }

    #[test]
    fn injected_io_error_carries_the_payload() {
        let fault = FaultInjector::failing_nth(FaultSite::SpillWrite, 0);
        let error = fault.io_check(FaultSite::SpillWrite).unwrap_err();
        let payload = error
            .get_ref()
            .and_then(|e| e.downcast_ref::<InjectedFault>())
            .expect("payload is InjectedFault");
        assert_eq!(payload.site, FaultSite::SpillWrite);
        assert!(error.to_string().contains("spill_write"));
    }

    #[test]
    #[should_panic(expected = "injected worker panic at superstep")]
    fn panic_check_panics_with_the_label() {
        let fault = FaultInjector::failing_nth(FaultSite::WorkerPanic, 0);
        fault.panic_check(FaultSite::WorkerPanic, "superstep");
    }

    #[test]
    fn env_parsing_is_inert_when_unset() {
        if std::env::var(FAULT_RATE_ENV).is_err() {
            assert!(!FaultInjector::from_env().is_enabled());
        }
    }
}
