//! Error type shared by the dataflow engine and its clients.

use std::fmt;

/// Errors raised while building or executing dataflow plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataflowError {
    /// The plan references an operator id that does not exist.
    UnknownOperator(usize),
    /// An operator was wired with the wrong number of inputs.
    InvalidArity {
        /// Human-readable operator name.
        operator: String,
        /// Number of inputs the contract expects.
        expected: usize,
        /// Number of inputs actually wired.
        actual: usize,
    },
    /// The plan contains a cycle; dataflow plans must be DAGs (iterations are
    /// expressed through the dedicated iteration operators, not raw cycles).
    CyclicPlan,
    /// A sink with the requested name does not exist in the plan.
    UnknownSink(String),
    /// Plan validation failed for a reason described by the message.
    InvalidPlan(String),
    /// A runtime worker failed; carries a description of the failure.
    ExecutionFailed(String),
    /// Writing a spilled run to disk failed (disk full, permissions, ...).
    SpillIo(String),
    /// A spilled run or checkpoint file failed validation on read-back: the
    /// file is torn, truncated, or its per-page checksum does not match.
    SpillCorrupt {
        /// Path of the corrupt file.
        path: String,
        /// Byte offset of the frame that failed validation.
        frame_offset: u64,
    },
    /// A pool worker task panicked; the scope caught the payload instead of
    /// unwinding the process.
    WorkerPanic {
        /// The operator (or driver stage) whose task panicked.
        operator: String,
        /// The superstep / iteration during which the panic happened
        /// (0 for non-iterative execution).
        superstep: usize,
        /// The panic message, when the payload was a string.
        message: String,
    },
    /// A transport stream delivered bytes that fail validation: bad frame
    /// magic, a checksum mismatch, or a frame truncated mid-payload.
    TornStream {
        /// The peer process whose stream tore.
        peer: usize,
        /// What failed validation.
        detail: String,
    },
    /// A peer process disconnected (or its connection died) while the
    /// exchange still owed or expected data from it.
    PeerLost {
        /// The peer process that was lost.
        peer: usize,
        /// How the loss was observed.
        detail: String,
    },
    /// A transport receive or barrier waited past its deadline — the
    /// distributed-deadlock detector tripping instead of hanging forever.
    CommTimeout(String),
    /// Cluster setup failed: bad handshake, rendezvous timeout, or an
    /// invalid cluster specification.
    CommSetup(String),
    /// Recovery retried up to its bound and every attempt failed; carries the
    /// last underlying error.
    RecoveryExhausted {
        /// The superstep that kept failing.
        superstep: usize,
        /// How many recovery attempts were made.
        retries: usize,
        /// The error from the final attempt.
        last: Box<DataflowError>,
    },
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowError::UnknownOperator(id) => write!(f, "unknown operator id {id}"),
            DataflowError::InvalidArity {
                operator,
                expected,
                actual,
            } => write!(
                f,
                "operator '{operator}' expects {expected} input(s) but was wired with {actual}"
            ),
            DataflowError::CyclicPlan => write!(f, "dataflow plan contains a cycle"),
            DataflowError::UnknownSink(name) => write!(f, "no sink named '{name}' in plan"),
            DataflowError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            DataflowError::ExecutionFailed(msg) => write!(f, "execution failed: {msg}"),
            DataflowError::SpillIo(msg) => write!(f, "spill I/O failed: {msg}"),
            DataflowError::SpillCorrupt { path, frame_offset } => write!(
                f,
                "corrupt spill data in {path} at frame offset {frame_offset}"
            ),
            DataflowError::WorkerPanic {
                operator,
                superstep,
                message,
            } => write!(
                f,
                "worker task panicked in '{operator}' (superstep {superstep}): {message}"
            ),
            DataflowError::TornStream { peer, detail } => {
                write!(f, "torn stream from peer {peer}: {detail}")
            }
            DataflowError::PeerLost { peer, detail } => {
                write!(f, "lost peer {peer}: {detail}")
            }
            DataflowError::CommTimeout(msg) => write!(f, "transport timed out: {msg}"),
            DataflowError::CommSetup(msg) => write!(f, "cluster setup failed: {msg}"),
            DataflowError::RecoveryExhausted {
                superstep,
                retries,
                last,
            } => write!(
                f,
                "recovery exhausted after {retries} retries at superstep {superstep}; last error: {last}"
            ),
        }
    }
}

impl std::error::Error for DataflowError {}

impl From<std::io::Error> for DataflowError {
    fn from(error: std::io::Error) -> DataflowError {
        // Corruption detected by the spill layer travels through io::Result
        // signatures as a typed payload; surface it as its own variant so
        // callers can distinguish "disk broke" from "data lied".
        if let Some(corrupt) = error
            .get_ref()
            .and_then(|e| e.downcast_ref::<crate::spill::CorruptRun>())
        {
            return DataflowError::SpillCorrupt {
                path: corrupt.path.display().to_string(),
                frame_offset: corrupt.frame_offset,
            };
        }
        DataflowError::SpillIo(error.to_string())
    }
}

impl From<comm::CommError> for DataflowError {
    fn from(error: comm::CommError) -> DataflowError {
        match error {
            comm::CommError::TornStream { peer, detail } => {
                DataflowError::TornStream { peer, detail }
            }
            comm::CommError::PeerLost { peer, detail } => DataflowError::PeerLost { peer, detail },
            comm::CommError::Timeout { waiting_for } => DataflowError::CommTimeout(waiting_for),
            comm::CommError::Handshake(detail) => DataflowError::CommSetup(detail),
        }
    }
}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, DataflowError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let e = DataflowError::InvalidArity {
            operator: "join".into(),
            expected: 2,
            actual: 1,
        };
        assert!(e.to_string().contains("join"));
        assert!(e.to_string().contains("2"));
        assert!(DataflowError::UnknownSink("out".into())
            .to_string()
            .contains("out"));
        assert!(DataflowError::CyclicPlan.to_string().contains("cycle"));
    }

    #[test]
    fn error_is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(DataflowError::CyclicPlan);
        assert!(e.to_string().contains("cycle"));
    }
}
