//! The engine's binding to the `comm` transport layer.
//!
//! `comm` is payload-generic; this module pins it to the engine's sealed
//! [`RecordPage`] — a [`comm::WireCodec`] implementation over the page's raw
//! framed bytes (serialization is a memcpy, deserialization a validation
//! walk) — and wraps the `Arc<dyn Transport>` in a cloneable
//! [`TransportHandle`] the configuration objects carry.  The default handle
//! is the in-process backend, so single-process execution pays no setup and
//! no serialization; a cluster run swaps in [`comm::tcp::TcpTransport`]
//! without touching operator code.

use crate::error::{DataflowError, Result};
use crate::fault::{FaultInjector, FaultSite};
use crate::page::RecordPage;
use comm::tcp::{TcpOptions, TcpTransport};
use comm::{ChannelId, ClusterSpec, FaultHook, LocalTransport};
use std::sync::Arc;

pub use comm::{PageChannel, Transport};

impl comm::WireCodec for RecordPage {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.record_count() as u32).to_le_bytes());
        out.extend_from_slice(self.bytes());
    }

    fn decode(bytes: &[u8]) -> std::result::Result<RecordPage, String> {
        let count = bytes
            .get(0..4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
            .ok_or_else(|| "page missing record-count prefix".to_owned())?
            as usize;
        let buf = &bytes[4..];
        // The frame CRC already vouches for transport integrity; this walk
        // vouches for structure, so a malformed page can never plant an
        // out-of-bounds offset inside the engine.
        let mut offset = 0usize;
        for _ in 0..count {
            let len = buf
                .get(offset..offset + 4)
                .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
                .ok_or_else(|| "page record frame truncated".to_owned())?
                as usize;
            offset += 4;
            if buf.len() - offset < len {
                return Err("page record payload truncated".to_owned());
            }
            offset += len;
        }
        if offset != buf.len() {
            return Err(format!("page has {} trailing bytes", buf.len() - offset));
        }
        Ok(RecordPage::from_raw(buf.to_vec(), count))
    }
}

/// The channel type every exchange ships its pages through.
pub type SharedPageChannel = Arc<dyn PageChannel<RecordPage>>;

/// A cloneable handle on the process's transport, carried by the execution
/// configs.  [`TransportHandle::default`] is the in-process backend — a
/// single-process cluster with pointer-moving channels.
#[derive(Clone)]
pub struct TransportHandle {
    inner: Arc<dyn Transport<RecordPage>>,
}

impl Default for TransportHandle {
    fn default() -> Self {
        TransportHandle::local()
    }
}

impl std::fmt::Debug for TransportHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransportHandle")
            .field("cluster", &self.cluster())
            .finish_non_exhaustive()
    }
}

impl TransportHandle {
    /// The in-process backend (a cluster of one).
    pub fn local() -> TransportHandle {
        TransportHandle {
            inner: Arc::new(LocalTransport::new()),
        }
    }

    /// Connects the TCP backend: rendezvous through `coordinator`, full mesh
    /// between the cluster's processes.  `fault` (when enabled) injects
    /// connection drops at its [`FaultSite::ConnDrop`] site.
    pub fn tcp_cluster(
        spec: ClusterSpec,
        coordinator: &str,
        fault: &FaultInjector,
    ) -> Result<TransportHandle> {
        let options = TcpOptions {
            fault_hook: conn_drop_hook(fault),
            ..TcpOptions::default()
        };
        let transport = TcpTransport::connect_with(spec, coordinator, options)?;
        Ok(TransportHandle {
            inner: Arc::new(transport),
        })
    }

    /// Wraps an already-built transport.
    pub fn from_transport(inner: Arc<dyn Transport<RecordPage>>) -> TransportHandle {
        TransportHandle { inner }
    }

    /// The cluster this handle connects.
    pub fn cluster(&self) -> ClusterSpec {
        self.inner.cluster()
    }

    /// True when this process is part of a multi-process cluster.
    pub fn is_distributed(&self) -> bool {
        self.cluster().processes > 1
    }

    /// Allocates a channel group id (see the SPMD contract in `comm`).
    pub fn allocate(&self) -> u64 {
        self.inner.allocate()
    }

    /// Opens the page channel for `id` across `partitions` global partitions.
    pub fn channel(&self, id: ChannelId, partitions: usize) -> SharedPageChannel {
        self.inner.channel(id, partitions)
    }

    /// Opens a freshly allocated single-edge channel — the common case for
    /// one dataflow exchange.
    pub fn fresh_channel(&self, partitions: usize) -> SharedPageChannel {
        self.channel(ChannelId::new(self.allocate(), 0), partitions)
    }

    /// Cluster-wide value exchange and barrier at `(id, round)`; returns
    /// every process's `values`, indexed by process.
    pub fn all_gather(&self, id: ChannelId, round: u64, values: &[u64]) -> Result<Vec<Vec<u64>>> {
        self.inner
            .all_gather(id, round, values)
            .map_err(DataflowError::from)
    }
}

/// Adapts the engine's seeded [`FaultInjector`] to the transport's
/// [`FaultHook`]: each outbound frame is one event at
/// [`FaultSite::ConnDrop`].  Returns `None` when injection is disabled so
/// the disabled path stays free.
pub fn conn_drop_hook(fault: &FaultInjector) -> Option<FaultHook> {
    if !fault.is_enabled() {
        return None;
    }
    let fault = fault.clone();
    Some(Arc::new(move || {
        fault.io_check(FaultSite::ConnDrop).is_err()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageWriter;
    use crate::record::Record;
    use comm::WireCodec;

    fn sample_page() -> Arc<RecordPage> {
        let mut writer = PageWriter::new();
        for i in 0..100 {
            writer.push(&Record::pair(i, i * 2));
        }
        writer.finish().into_iter().next().expect("one page")
    }

    #[test]
    fn record_pages_round_trip_through_the_wire_codec() {
        let page = sample_page();
        let mut wire = Vec::new();
        page.encode(&mut wire);
        let back = RecordPage::decode(&wire).expect("decodes");
        assert_eq!(back.record_count(), page.record_count());
        assert_eq!(back.byte_len(), page.byte_len());
        let records: Vec<Record> = back.reader().map(|v| v.materialize()).collect();
        assert_eq!(records[3], Record::pair(3, 6));
    }

    #[test]
    fn torn_page_bytes_fail_decode_instead_of_planting_bad_offsets() {
        let page = sample_page();
        let mut wire = Vec::new();
        page.encode(&mut wire);
        // Claim one more record than the payload holds.
        let count = page.record_count() as u32 + 1;
        wire[0..4].copy_from_slice(&count.to_le_bytes());
        assert!(RecordPage::decode(&wire).is_err());
        // Truncate the payload mid-record.
        let mut torn = Vec::new();
        page.encode(&mut torn);
        torn.truncate(torn.len() - 3);
        assert!(RecordPage::decode(&torn).is_err());
        // Empty input.
        assert!(RecordPage::decode(&[]).is_err());
    }

    #[test]
    fn default_handle_is_a_single_process_cluster() {
        let handle = TransportHandle::default();
        assert!(!handle.is_distributed());
        assert_eq!(handle.cluster(), ClusterSpec::single());
        let gathered = handle
            .all_gather(ChannelId::new(0, 0), 0, &[1, 2, 3])
            .unwrap();
        assert_eq!(gathered, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn conn_drop_hook_follows_the_injector_schedule() {
        assert!(conn_drop_hook(&FaultInjector::disabled()).is_none());
        let fault = FaultInjector::failing_nth(FaultSite::ConnDrop, 1);
        let hook = conn_drop_hook(&fault).expect("enabled injector adapts");
        assert!(!hook()); // event 0
        assert!(hook()); // event 1 fires
        assert!(!hook()); // event 2
        assert_eq!(fault.injected(FaultSite::ConnDrop), 1);
    }
}
