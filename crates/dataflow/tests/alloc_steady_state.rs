//! Counting-allocator proof of the page-native steady state: once the page
//! pool is primed, one exchange→probe cycle of a `Long`-keyed join performs
//! **zero** heap allocations per record — the probe phase allocates nothing
//! at all, and the whole cycle allocates O(pages), not O(records).
//!
//! This file holds exactly one `#[test]` so no sibling test can run
//! concurrently inside the process and pollute the allocation counters.

use dataflow::page::{PagePool, PageWriter, PagedRecords, PrefixTable};
use dataflow::prelude::Record;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Wraps the system allocator and counts every allocation.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_exchange_probe_cycle_allocates_no_record_objects() {
    const BUILD_RECORDS: i64 = 100_000;
    const KEYS: i64 = 1_024;

    // The build side ships once as sealed pages (the exchange input of every
    // cycle below) and the probe side arrives the same way — records exist
    // as heap objects only here, at the edge of the pipeline.
    let mut writer = PageWriter::new();
    for i in 0..BUILD_RECORDS {
        writer.push(&Record::pair(i % KEYS, i));
    }
    let build_pages = writer.finish();
    let mut writer = PageWriter::new();
    for i in 0..KEYS * 4 {
        writer.push(&Record::pair(i % KEYS, -i));
    }
    let probe_pages = writer.finish();

    let mut pool = PagePool::with_limit(1024);
    let mut table = PrefixTable::new();
    let mut checksum = 0u64;
    let mut cycle_allocations = usize::MAX;
    let mut probe_allocations = usize::MAX;

    // Cycle 0 warms the pool and the table (their capacities are the steady
    // state); cycles 1-2 are measured.
    for cycle in 0..3 {
        let cycle_start = allocations();

        // "Exchange": re-serialize the build records into sealed pages using
        // recycled buffers, as a superstep's outbox writers do.
        let mut writer = PageWriter::new();
        writer.add_spare_buffers(pool.take(usize::MAX));
        let mut scratch = Record::empty();
        for page in &build_pages {
            for view in page.reader() {
                view.read_into(&mut scratch);
                writer.push(&scratch);
            }
        }
        let shipped = writer.finish();

        // Build: adopt the shipped pages by pointer and index every record
        // under its 8-byte normalized key prefix.
        table.clear();
        let mut store = PagedRecords::new();
        for page in &shipped {
            store.adopt_page_scanned(page, |handle, view| {
                table.insert(view.long_key_prefix(0).expect("Long key"), handle);
                true
            });
        }

        // Probe: every probe record drives a chain walk plus an in-place
        // field read per match — no record is materialized, nothing at all
        // is allocated.
        let probe_start = allocations();
        for page in &probe_pages {
            for view in page.reader() {
                let prefix = view.long_key_prefix(0).expect("Long key");
                for handle in table.probe(prefix) {
                    checksum = checksum.wrapping_add(store.view(handle).long(1) as u64);
                }
            }
        }
        probe_allocations = allocations() - probe_start;

        // Recycle: consumed pages hand their buffers back for the next
        // cycle's exchange, closing the steady-state loop.  The store's
        // copies of the adopted pages are still co-owned (refcount 2) and
        // fail recycling; dropping them leaves `shipped` as the sole owner,
        // so the second pass recovers every buffer.
        pool.recycle_all(store.into_pages());
        pool.recycle_all(shipped);

        if cycle > 0 {
            cycle_allocations = allocations() - cycle_start;
        }
    }
    assert_ne!(checksum, 0, "the probes must have matched");

    assert_eq!(
        probe_allocations, 0,
        "the probe phase must not allocate at all"
    );
    // The whole cycle may allocate per *page* (each seal wraps its buffer in
    // a fresh `Arc<RecordPage>`), never per record.
    let per_record_bound = (BUILD_RECORDS / 50) as usize;
    assert!(
        cycle_allocations < per_record_bound,
        "steady-state cycle allocated {cycle_allocations} times \
         (bound {per_record_bound}) — a per-record allocation crept in"
    );
}
