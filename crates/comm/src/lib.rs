//! Transport layer for the exchange: page channels between workers behind
//! one [`Transport`] trait, with an in-process backend ([`LocalTransport`])
//! and a TCP backend ([`TcpTransport`](crate::tcp::TcpTransport)).
//!
//! The engine's exchanges already move sealed binary pages — a wire format
//! with exact serialized widths.  This crate adds the wire: a channel
//! abstraction that ships batches of reference-counted pages between
//! *partitions* (the engine's unit of parallelism), where each of the
//! cluster's processes owns one contiguous block of partitions.  A
//! single-process cluster degenerates to pure pointer moves through the same
//! call path, so operator code is transport-agnostic (the exemplar is
//! timely-dataflow's `communication` crate, which puts in-process and TCP
//! allocation behind one allocator interface).
//!
//! The crate is deliberately payload-generic: it knows nothing about the
//! engine's `RecordPage` (the engine depends on this crate, not the other
//! way around).  Anything implementing [`WireCodec`] can travel; the engine
//! provides the codec for its page type.
//!
//! ## Determinism contract
//!
//! Channel identifiers are allocated by [`Transport::allocate`] from a
//! process-local counter.  Every process of a cluster must therefore build
//! its dataflows in the same order (the usual SPMD discipline) so that the
//! n-th allocation names the same logical exchange everywhere.  Within a
//! channel, [`PageChannel::recv`] returns batches ordered by source
//! partition — exactly the source-major append order a single-process
//! exchange produces — which is what makes multi-process runs byte-identical
//! to the single-process oracle, superstep for superstep.

#![warn(missing_docs)]

pub mod tcp;

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Environment variable bounding how long a blocking [`PageChannel::recv`]
/// or [`Transport::all_gather`] waits before surfacing
/// [`CommError::Timeout`] (seconds).  The default is
/// [`DEFAULT_TIMEOUT_SECS`]; a lost peer usually surfaces as
/// [`CommError::PeerLost`] long before the timeout, which exists so that a
/// distributed deadlock becomes a typed error instead of a hang.
pub const TIMEOUT_ENV: &str = "SPINNING_COMM_TIMEOUT_SECS";

/// Default blocking-wait bound in seconds (see [`TIMEOUT_ENV`]).
pub const DEFAULT_TIMEOUT_SECS: u64 = 300;

/// Parses a [`TIMEOUT_ENV`] value.  `None` / empty means "unset" (use the
/// default); a malformed or zero value is an error — zero would turn every
/// blocking wait into an instant timeout, and silently ignoring garbage hid
/// misconfigured clusters behind the 300s default.
pub fn parse_timeout_secs(raw: Option<&str>) -> Result<Option<u64>, String> {
    let Some(raw) = raw else { return Ok(None) };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    match trimmed.parse::<u64>() {
        Ok(0) => Err(format!(
            "{TIMEOUT_ENV}={trimmed:?} must be at least 1 second"
        )),
        Ok(secs) => Ok(Some(secs)),
        Err(_) => Err(format!(
            "{TIMEOUT_ENV}={trimmed:?} is not a whole number of seconds"
        )),
    }
}

/// Reads the configured blocking-wait bound from the environment.  A
/// malformed or zero value is rejected loudly (a stderr warning, falling back
/// to the default) instead of being silently ignored.
pub fn timeout_from_env() -> Duration {
    let raw = std::env::var(TIMEOUT_ENV).ok();
    let secs = match parse_timeout_secs(raw.as_deref()) {
        Ok(secs) => secs.unwrap_or(DEFAULT_TIMEOUT_SECS),
        Err(detail) => {
            eprintln!("warning: {detail}; using the {DEFAULT_TIMEOUT_SECS}s default");
            DEFAULT_TIMEOUT_SECS
        }
    };
    Duration::from_secs(secs)
}

/// Environment variable configuring the per-edge credit count of the bounded
/// channels: records in flight per sender→receiver edge in the async
/// microstep runtime, in-memory sealed pages per outbox writer in the
/// superstep exchange, and (clamped to at least
/// [`tcp::MIN_ROUND_WINDOW`]) the per-peer round window of the TCP
/// transport.  Unset means each layer's own default; memory per edge is
/// bounded by `credits × page_size`.
pub const CHANNEL_CREDITS_ENV: &str = "SPINNING_CHANNEL_CREDITS";

/// Parses a [`CHANNEL_CREDITS_ENV`] value.  `None` / empty means "unset";
/// malformed or zero values are errors (zero credits could never send
/// anything).
pub fn parse_channel_credits(raw: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = raw else { return Ok(None) };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Err(format!(
            "{CHANNEL_CREDITS_ENV}={trimmed:?} must be at least 1 credit"
        )),
        Ok(credits) => Ok(Some(credits)),
        Err(_) => Err(format!(
            "{CHANNEL_CREDITS_ENV}={trimmed:?} is not a whole number of credits"
        )),
    }
}

/// Reads the configured channel credit count from the environment, warning
/// loudly on stderr (and treating the variable as unset) when the value is
/// malformed or zero.
pub fn channel_credits_from_env() -> Option<usize> {
    let raw = std::env::var(CHANNEL_CREDITS_ENV).ok();
    match parse_channel_credits(raw.as_deref()) {
        Ok(credits) => credits,
        Err(detail) => {
            eprintln!("warning: {detail}; channel credits left at their defaults");
            None
        }
    }
}

// --- Cluster shape -----------------------------------------------------------

/// The shape of the cluster: how many worker processes there are and which
/// one this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Total number of worker processes.
    pub processes: usize,
    /// This process's index in `0..processes`.
    pub index: usize,
}

impl ClusterSpec {
    /// A single-process "cluster" — the shape every in-process run has.
    pub fn single() -> ClusterSpec {
        ClusterSpec {
            processes: 1,
            index: 0,
        }
    }

    /// Creates a spec, validating `index < processes` and `processes >= 1`.
    pub fn new(processes: usize, index: usize) -> Result<ClusterSpec, CommError> {
        if processes == 0 || index >= processes {
            return Err(CommError::Handshake(format!(
                "invalid cluster spec: index {index} of {processes} processes"
            )));
        }
        Ok(ClusterSpec { processes, index })
    }

    /// Partitions each process owns when `parallelism` global partitions are
    /// split over the cluster.  Errors unless the split is even — contiguous
    /// equal blocks are what keeps partition ownership a pure division.
    pub fn partitions_per_process(&self, parallelism: usize) -> Result<usize, CommError> {
        if parallelism == 0 || !parallelism.is_multiple_of(self.processes) {
            return Err(CommError::Handshake(format!(
                "parallelism {parallelism} is not divisible by {} processes",
                self.processes
            )));
        }
        Ok(parallelism / self.processes)
    }

    /// The process owning `partition` out of `parallelism` global partitions
    /// (contiguous blocks: process `k` owns `k*per .. (k+1)*per`).
    pub fn owner(&self, partition: usize, parallelism: usize) -> usize {
        let per = parallelism / self.processes.max(1);
        (partition / per.max(1)).min(self.processes - 1)
    }

    /// Whether this process owns `partition`.
    pub fn owns(&self, partition: usize, parallelism: usize) -> bool {
        self.owner(partition, parallelism) == self.index
    }

    /// The contiguous range of partitions this process owns.
    pub fn owned_range(&self, parallelism: usize) -> std::ops::Range<usize> {
        let per = parallelism / self.processes.max(1);
        self.index * per..(self.index + 1) * per
    }
}

/// Identifies one logical channel: a channel group (one per exchange scope,
/// from [`Transport::allocate`]) and an edge within it (e.g. one exchange of
/// a multi-input operator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelId {
    /// The channel group, from [`Transport::allocate`].
    pub group: u64,
    /// The edge within the group.
    pub edge: u64,
}

impl ChannelId {
    /// Creates a channel id.
    pub fn new(group: u64, edge: u64) -> ChannelId {
        ChannelId { group, edge }
    }
}

// --- Errors ------------------------------------------------------------------

/// A typed transport failure.  Everything here is `Clone` so one fatal
/// connection event can be surfaced to every waiter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The byte stream from a peer was torn: a truncated frame, a bad frame
    /// magic, or a per-frame CRC mismatch.
    TornStream {
        /// Peer process index.
        peer: usize,
        /// What exactly was wrong with the stream.
        detail: String,
    },
    /// A peer connection was lost (EOF, reset, or an injected drop).
    PeerLost {
        /// Peer process index.
        peer: usize,
        /// The underlying condition.
        detail: String,
    },
    /// A blocking receive or gather exceeded the configured bound
    /// (see [`TIMEOUT_ENV`]).
    Timeout {
        /// What the caller was waiting for.
        waiting_for: String,
    },
    /// Cluster setup failed: an invalid spec, a rendezvous that could not be
    /// established, or a peer speaking a different protocol.
    Handshake(String),
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::TornStream { peer, detail } => {
                write!(f, "torn stream from peer {peer}: {detail}")
            }
            CommError::PeerLost { peer, detail } => {
                write!(f, "lost connection to peer {peer}: {detail}")
            }
            CommError::Timeout { waiting_for } => {
                write!(f, "communication timeout waiting for {waiting_for}")
            }
            CommError::Handshake(detail) => write!(f, "cluster handshake failed: {detail}"),
        }
    }
}

impl std::error::Error for CommError {}

// --- Payload codec -----------------------------------------------------------

/// Serialization of one channel item (the engine's sealed page) for the
/// network backend.  The local backend never invokes the codec — pages move
/// by pointer.
pub trait WireCodec: Sized {
    /// Appends the item's wire encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes an item from exactly `bytes`.
    fn decode(bytes: &[u8]) -> Result<Self, String>;
}

/// Fault hook consulted once per outbound frame by the TCP backend: return
/// `true` to drop the connection at this point (the engine adapts its seeded
/// `FaultInjector` to this, keeping this crate dependency-free).
pub type FaultHook = Arc<dyn Fn() -> bool + Send + Sync>;

// --- The transport traits ----------------------------------------------------

/// A cluster transport: allocates page channels between the cluster's
/// partitions and global barriers between its processes.
pub trait Transport<P: Send + Sync>: Send + Sync {
    /// The cluster shape this transport connects.
    fn cluster(&self) -> ClusterSpec;

    /// Allocates a fresh channel-group id from a process-local counter.
    /// Under the SPMD discipline (see the crate docs) every process's n-th
    /// allocation names the same logical exchange.
    fn allocate(&self) -> u64;

    /// Opens the channel `id` spanning `partitions` global partitions.
    /// Opening the same id twice returns the same underlying channel.
    fn channel(&self, id: ChannelId, partitions: usize) -> Arc<dyn PageChannel<P>>;

    /// Exchanges `values` with every process of the cluster at `(id, round)`
    /// and returns all processes' values, indexed by process.  Doubles as a
    /// cluster-wide barrier; each process must call it exactly once per
    /// `(id, round)`.
    fn all_gather(
        &self,
        id: ChannelId,
        round: u64,
        values: &[u64],
    ) -> Result<Vec<Vec<u64>>, CommError>;
}

/// One page channel: batches of `Arc<P>` flow from source partitions to
/// target partitions in numbered rounds (a round is one exchange — e.g. one
/// superstep).
pub trait PageChannel<P: Send + Sync>: Send + Sync {
    /// Ships `pages` from partition `from` to partition `to` in `round`.
    /// Targets owned by this process receive the `Arc`s by pointer; remote
    /// targets receive them through the wire codec.  May be called
    /// concurrently for distinct `from` partitions.
    fn send(&self, round: u64, from: usize, to: usize, pages: Vec<Arc<P>>)
        -> Result<(), CommError>;

    /// Declares that source partition `from` has sent everything it will
    /// send in `round` (to any target).  Every source partition must finish
    /// every round it participates in, or receivers block until timeout.
    fn finish_round(&self, round: u64, from: usize) -> Result<(), CommError>;

    /// Receives everything addressed to partition `to` in `round`: blocks
    /// until **all** source partitions finished the round, then returns the
    /// non-empty batches ordered by source partition.  Must be called
    /// exactly once per owned target partition per round.
    fn recv(&self, round: u64, to: usize) -> Result<SourceBatches<P>, CommError>;
}

/// A received round for one target partition: the non-empty page batches,
/// ordered by source partition — the same order a single-process exchange
/// appends them in.
pub type SourceBatches<P> = Vec<(usize, Vec<Arc<P>>)>;

// --- CRC-32 (shared by the TCP frame format; same IEEE polynomial and table
// discipline as the engine's spill-run frames) --------------------------------

/// The CRC-32 (IEEE) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                0xEDB8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) over `bytes` — the per-frame checksum of the TCP framing,
/// matching the engine's spill-run frame discipline.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// --- Shared inbox: the demux state behind both backends ----------------------

/// Everything received but not yet consumed, plus per-peer poison entries
/// fatal connection events write so waiters that depend on a lost peer
/// unblock with a typed error.
pub(crate) struct Inbox<P> {
    state: Mutex<InboxState<P>>,
    cv: Condvar,
}

struct InboxState<P> {
    /// `(group, edge) -> round -> state`.
    channels: HashMap<(u64, u64), HashMap<u64, RoundState<P>>>,
    /// `(group, round) -> process -> gathered values`.
    gathers: HashMap<(u64, u64), BTreeMap<usize, Vec<u64>>>,
    /// Peers whose connection failed, with the typed error.  A wait fails
    /// only when data it is still missing is owed by a dead peer: TCP
    /// ordering guarantees everything a peer sent was demultiplexed before
    /// its EOF was observed, so a peer that exits after finishing its run
    /// never takes down a survivor that only needs data from live peers.
    dead: BTreeMap<usize, CommError>,
}

struct RoundState<P> {
    /// `to -> from -> pages`, ordered by source so draining a target yields
    /// the source-major order the single-process exchange produces.
    batches: BTreeMap<usize, BTreeMap<usize, Vec<Arc<P>>>>,
    /// Source partitions that finished the round.
    finished: HashSet<usize>,
    /// Target partitions already drained by [`PageChannel::recv`].
    drained: HashSet<usize>,
}

impl<P> Default for RoundState<P> {
    fn default() -> Self {
        RoundState {
            batches: BTreeMap::new(),
            finished: HashSet::new(),
            drained: HashSet::new(),
        }
    }
}

impl<P> Inbox<P> {
    pub(crate) fn new() -> Arc<Inbox<P>> {
        Arc::new(Inbox {
            state: Mutex::new(InboxState {
                channels: HashMap::new(),
                gathers: HashMap::new(),
                dead: BTreeMap::new(),
            }),
            cv: Condvar::new(),
        })
    }

    /// Marks `peer` dead: any wait still missing data that `peer` owes gets
    /// `error`.  The first error per peer wins.
    pub(crate) fn poison(&self, peer: usize, error: CommError) {
        let mut state = self.state.lock().expect("inbox lock");
        state.dead.entry(peer).or_insert(error);
        self.cv.notify_all();
    }

    /// The typed error recorded for `peer`, if its connection died — lets
    /// the TCP round-window waiters fail fast instead of waiting out their
    /// deadline on a credit a dead peer can never grant.
    pub(crate) fn dead_error(&self, peer: usize) -> Option<CommError> {
        self.state
            .lock()
            .expect("inbox lock")
            .dead
            .get(&peer)
            .cloned()
    }

    /// Delivers a batch of pages into `(id, round, from, to)`.
    ///
    /// Insertions never fail on a poisoned inbox: a peer that finished its
    /// run closes its connections cleanly, and the poison that EOF writes
    /// must not clobber data (local or already-received) that completes a
    /// wait.  Only waits that cannot complete surface the poison.
    pub(crate) fn deliver(
        &self,
        id: ChannelId,
        round: u64,
        from: usize,
        to: usize,
        pages: Vec<Arc<P>>,
    ) {
        let mut state = self.state.lock().expect("inbox lock");
        let round_state = state
            .channels
            .entry((id.group, id.edge))
            .or_default()
            .entry(round)
            .or_default();
        round_state
            .batches
            .entry(to)
            .or_default()
            .entry(from)
            .or_default()
            .extend(pages);
    }

    /// Marks source partition `from` finished in `(id, round)` (see
    /// [`Inbox::deliver`] on why insertions ignore the poison slot).
    pub(crate) fn finish(&self, id: ChannelId, round: u64, from: usize) {
        let mut state = self.state.lock().expect("inbox lock");
        state
            .channels
            .entry((id.group, id.edge))
            .or_default()
            .entry(round)
            .or_default()
            .finished
            .insert(from);
        drop(state);
        self.cv.notify_all();
    }

    /// Blocks until all `partitions` sources finished `(id, round)`, then
    /// drains target `to`'s batches in source order.  `owned_targets` bounds
    /// the round's lifetime: once every owned target drained, the round's
    /// state is dropped and the returned flag is `true` — the TCP backend
    /// uses that edge to grant its peers a fresh round credit.  `owner` maps
    /// a source partition to the process that hosts it, so a dead peer only
    /// fails waits it still owes data.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn wait_recv(
        &self,
        id: ChannelId,
        round: u64,
        to: usize,
        partitions: usize,
        owned_targets: usize,
        timeout: Duration,
        owner: impl Fn(usize) -> usize,
    ) -> Result<(SourceBatches<P>, bool), CommError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("inbox lock");
        loop {
            // Completeness wins over poison: a peer that finished its run
            // closes cleanly after sending everything, and TCP ordering put
            // that data in the inbox before the EOF, so a round whose data
            // is all here must drain despite dead peers.
            let round_state = state
                .channels
                .get(&(id.group, id.edge))
                .and_then(|rounds| rounds.get(&round));
            let complete = round_state
                .map(|r| r.finished.len() >= partitions)
                .unwrap_or(false);
            if complete {
                break;
            }
            // An unfinished source hosted by a dead peer can never finish.
            if !state.dead.is_empty() {
                for source in 0..partitions {
                    let finished = round_state
                        .map(|r| r.finished.contains(&source))
                        .unwrap_or(false);
                    if !finished {
                        if let Some(error) = state.dead.get(&owner(source)) {
                            return Err(error.clone());
                        }
                    }
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(CommError::Timeout {
                    waiting_for: format!(
                        "channel ({}, {}) round {round} at target {to}",
                        id.group, id.edge
                    ),
                });
            }
            let (next, _) = self
                .cv
                .wait_timeout(state, deadline - now)
                .expect("inbox lock");
            state = next;
        }
        let rounds = state
            .channels
            .get_mut(&(id.group, id.edge))
            .expect("channel present");
        let round_state = rounds.get_mut(&round).expect("round present");
        let batches = round_state
            .batches
            .remove(&to)
            .map(|by_from| by_from.into_iter().collect())
            .unwrap_or_default();
        round_state.drained.insert(to);
        let round_done = round_state.drained.len() >= owned_targets;
        if round_done {
            rounds.remove(&round);
        }
        Ok((batches, round_done))
    }

    /// Records `values` from `process` at `(group, round)` (see
    /// [`Inbox::deliver`] on why insertions ignore the poison slot).
    pub(crate) fn gather_insert(&self, group: u64, round: u64, process: usize, values: Vec<u64>) {
        let mut state = self.state.lock().expect("inbox lock");
        state
            .gathers
            .entry((group, round))
            .or_default()
            .insert(process, values);
        drop(state);
        self.cv.notify_all();
    }

    /// Blocks until all `processes` contributed to `(group, round)`, then
    /// returns the values indexed by process and drops the gather state.
    pub(crate) fn wait_gather(
        &self,
        group: u64,
        round: u64,
        processes: usize,
        timeout: Duration,
    ) -> Result<Vec<Vec<u64>>, CommError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("inbox lock");
        loop {
            // Completeness wins over poison, as in `wait_recv`.
            let gathered = state.gathers.get(&(group, round));
            if gathered.map(|g| g.len() >= processes).unwrap_or(false) {
                break;
            }
            // A dead peer that has not contributed yet never will.
            if !state.dead.is_empty() {
                for process in 0..processes {
                    let present = gathered.map(|g| g.contains_key(&process)).unwrap_or(false);
                    if !present {
                        if let Some(error) = state.dead.get(&process) {
                            return Err(error.clone());
                        }
                    }
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(CommError::Timeout {
                    waiting_for: format!("all_gather (group {group}, round {round})"),
                });
            }
            let (next, _) = self
                .cv
                .wait_timeout(state, deadline - now)
                .expect("inbox lock");
            state = next;
        }
        let gathered = state
            .gathers
            .remove(&(group, round))
            .expect("gather present");
        Ok(gathered.into_values().collect())
    }
}

// --- The in-process backend --------------------------------------------------

/// The in-process transport: a single-process cluster whose channels move
/// `Arc` page pointers through the shared inbox — the refactored form of the
/// executor's original direct gather, with identical ordering and no
/// serialization.
pub struct LocalTransport<P> {
    inbox: Arc<Inbox<P>>,
    counter: AtomicU64,
    timeout: Duration,
}

impl<P> fmt::Debug for LocalTransport<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalTransport").finish_non_exhaustive()
    }
}

impl<P: Send + Sync + 'static> Default for LocalTransport<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Send + Sync + 'static> LocalTransport<P> {
    /// Creates the single-process transport.
    pub fn new() -> LocalTransport<P> {
        LocalTransport {
            inbox: Inbox::new(),
            counter: AtomicU64::new(0),
            timeout: timeout_from_env(),
        }
    }
}

struct LocalChannel<P> {
    id: ChannelId,
    partitions: usize,
    inbox: Arc<Inbox<P>>,
    timeout: Duration,
}

impl<P: Send + Sync + 'static> Transport<P> for LocalTransport<P> {
    fn cluster(&self) -> ClusterSpec {
        ClusterSpec::single()
    }

    fn allocate(&self) -> u64 {
        self.counter.fetch_add(1, Ordering::Relaxed)
    }

    fn channel(&self, id: ChannelId, partitions: usize) -> Arc<dyn PageChannel<P>> {
        Arc::new(LocalChannel {
            id,
            partitions,
            inbox: Arc::clone(&self.inbox),
            timeout: self.timeout,
        })
    }

    fn all_gather(
        &self,
        _id: ChannelId,
        _round: u64,
        values: &[u64],
    ) -> Result<Vec<Vec<u64>>, CommError> {
        Ok(vec![values.to_vec()])
    }
}

impl<P: Send + Sync + 'static> PageChannel<P> for LocalChannel<P> {
    fn send(
        &self,
        round: u64,
        from: usize,
        to: usize,
        pages: Vec<Arc<P>>,
    ) -> Result<(), CommError> {
        if pages.is_empty() {
            return Ok(());
        }
        self.inbox.deliver(self.id, round, from, to, pages);
        Ok(())
    }

    fn finish_round(&self, round: u64, from: usize) -> Result<(), CommError> {
        self.inbox.finish(self.id, round, from);
        Ok(())
    }

    fn recv(&self, round: u64, to: usize) -> Result<Vec<(usize, Vec<Arc<P>>)>, CommError> {
        let (batches, _round_done) = self.inbox.wait_recv(
            self.id,
            round,
            to,
            self.partitions,
            self.partitions,
            self.timeout,
            // Single process: every partition lives here.
            |_| 0,
        )?;
        Ok(batches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_spec_ownership_is_contiguous_blocks() {
        let spec = ClusterSpec::new(3, 1).unwrap();
        assert_eq!(spec.partitions_per_process(6).unwrap(), 2);
        assert!(spec.partitions_per_process(7).is_err());
        assert_eq!(spec.owner(0, 6), 0);
        assert_eq!(spec.owner(1, 6), 0);
        assert_eq!(spec.owner(2, 6), 1);
        assert_eq!(spec.owner(5, 6), 2);
        assert_eq!(spec.owned_range(6), 2..4);
        assert!(spec.owns(3, 6));
        assert!(!spec.owns(4, 6));
        assert!(ClusterSpec::new(3, 3).is_err());
        assert!(ClusterSpec::new(0, 0).is_err());
    }

    #[test]
    fn local_channel_delivers_in_source_major_order() {
        let transport: LocalTransport<String> = LocalTransport::new();
        let group = transport.allocate();
        let channel = transport.channel(ChannelId::new(group, 0), 3);
        // Sources send out of order; the receiver must still see 0, 1, 2.
        channel
            .send(1, 2, 0, vec![Arc::new("from-2".to_owned())])
            .unwrap();
        channel
            .send(1, 1, 0, vec![Arc::new("from-1a".to_owned())])
            .unwrap();
        channel
            .send(1, 1, 0, vec![Arc::new("from-1b".to_owned())])
            .unwrap();
        // Empty sends are dropped, not delivered as empty batches.
        channel.send(1, 0, 0, Vec::new()).unwrap();
        for from in 0..3 {
            channel.finish_round(1, from).unwrap();
        }
        let received = channel.recv(1, 0).unwrap();
        let order: Vec<(usize, Vec<&str>)> = received
            .iter()
            .map(|(from, pages)| (*from, pages.iter().map(|p| p.as_str()).collect()))
            .collect();
        assert_eq!(
            order,
            vec![(1, vec!["from-1a", "from-1b"]), (2, vec!["from-2"])]
        );
        assert!(channel.recv(1, 1).unwrap().is_empty());
        assert!(channel.recv(1, 2).unwrap().is_empty());
    }

    #[test]
    fn local_rounds_are_independent_and_cleaned_up() {
        let transport: LocalTransport<u64> = LocalTransport::new();
        let channel = transport.channel(ChannelId::new(transport.allocate(), 0), 2);
        for round in 1..=3u64 {
            channel.send(round, 0, 1, vec![Arc::new(round)]).unwrap();
            channel.finish_round(round, 0).unwrap();
            channel.finish_round(round, 1).unwrap();
            let got = channel.recv(round, 1).unwrap();
            assert_eq!(got.len(), 1);
            assert_eq!(*got[0].1[0], round);
            assert!(channel.recv(round, 0).unwrap().is_empty());
        }
        let state = transport.inbox.state.lock().unwrap();
        let rounds = state.channels.values().map(HashMap::len).sum::<usize>();
        assert_eq!(rounds, 0, "drained rounds must not accumulate");
    }

    #[test]
    fn local_all_gather_returns_own_values() {
        let transport: LocalTransport<u64> = LocalTransport::new();
        let id = ChannelId::new(transport.allocate(), 0);
        let gathered = transport.all_gather(id, 7, &[1, 2, 3]).unwrap();
        assert_eq!(gathered, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn poisoned_inbox_fails_incomplete_waits_but_drains_complete_rounds() {
        let transport: LocalTransport<u64> = LocalTransport::new();
        let channel = transport.channel(ChannelId::new(0, 0), 2);
        // Round 1 completes before the poison lands: both sources finish.
        channel.send(1, 0, 0, vec![Arc::new(9)]).unwrap();
        channel.finish_round(1, 0).unwrap();
        channel.finish_round(1, 1).unwrap();
        transport.inbox.poison(
            0,
            CommError::PeerLost {
                peer: 0,
                detail: "test".into(),
            },
        );
        // Completeness wins over poison: the finished round still drains —
        // a peer that closed cleanly after sending everything must not
        // clobber data already here.
        let batches = channel.recv(1, 0).unwrap();
        assert_eq!(batches.len(), 1);
        // A wait still owed data by the dead peer surfaces its error.
        let err = channel.recv(2, 0).unwrap_err();
        assert!(matches!(err, CommError::PeerLost { peer: 0, .. }));
    }

    #[test]
    fn a_dead_peer_only_fails_waits_it_still_owes_data() {
        let transport: LocalTransport<u64> = LocalTransport::new();
        let channel = Arc::new(LocalChannel::<u64> {
            id: ChannelId::new(0, 0),
            partitions: 2,
            inbox: Arc::clone(&transport.inbox),
            timeout: Duration::from_millis(50),
        });
        // Peer 9 dies, but neither source partition of this channel lives
        // there (the local owner map sends everything to process 0), so the
        // wait times out instead of surfacing the unrelated peer loss.
        transport.inbox.poison(
            9,
            CommError::PeerLost {
                peer: 9,
                detail: "unrelated".into(),
            },
        );
        channel.finish_round(1, 0).unwrap();
        let err = channel.recv(1, 0).unwrap_err();
        assert!(matches!(err, CommError::Timeout { .. }), "got {err:?}");
    }

    #[test]
    fn timeout_parsing_accepts_valid_and_rejects_garbage() {
        // Valid / unset values pass through.
        assert_eq!(parse_timeout_secs(None), Ok(None));
        assert_eq!(parse_timeout_secs(Some("")), Ok(None));
        assert_eq!(parse_timeout_secs(Some("  ")), Ok(None));
        assert_eq!(parse_timeout_secs(Some("60")), Ok(Some(60)));
        assert_eq!(parse_timeout_secs(Some(" 7 ")), Ok(Some(7)));
        // Malformed and zero values are rejected, not silently defaulted.
        let err = parse_timeout_secs(Some("5 minutes")).unwrap_err();
        assert!(err.contains(TIMEOUT_ENV), "got {err}");
        let err = parse_timeout_secs(Some("0")).unwrap_err();
        assert!(err.contains("at least 1"), "got {err}");
        assert!(parse_timeout_secs(Some("-3")).is_err());
    }

    #[test]
    fn channel_credit_parsing_accepts_valid_and_rejects_garbage() {
        assert_eq!(parse_channel_credits(None), Ok(None));
        assert_eq!(parse_channel_credits(Some("")), Ok(None));
        assert_eq!(parse_channel_credits(Some("2")), Ok(Some(2)));
        assert_eq!(parse_channel_credits(Some(" 1024 ")), Ok(Some(1024)));
        let err = parse_channel_credits(Some("lots")).unwrap_err();
        assert!(err.contains(CHANNEL_CREDITS_ENV), "got {err}");
        let err = parse_channel_credits(Some("0")).unwrap_err();
        assert!(err.contains("at least 1"), "got {err}");
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn recv_times_out_as_a_typed_error_instead_of_hanging() {
        let transport: LocalTransport<u64> = LocalTransport::new();
        let channel = Arc::new(LocalChannel::<u64> {
            id: ChannelId::new(0, 0),
            partitions: 2,
            inbox: Arc::clone(&transport.inbox),
            timeout: Duration::from_millis(50),
        });
        // Source 1 never finishes the round.
        channel.finish_round(1, 0).unwrap();
        let err = channel.recv(1, 0).unwrap_err();
        assert!(matches!(err, CommError::Timeout { .. }), "got {err:?}");
    }
}
