//! The TCP backend: length-framed page batches with a per-frame CRC-32
//! (the spill-run frame discipline on a socket), a rendezvous handshake
//! carrying cluster size / worker index / protocol version, and typed
//! [`CommError`]s for torn streams and lost peers instead of hangs.
//!
//! ## Rendezvous
//!
//! Process 0 binds the coordinator address.  Every other process binds an
//! ephemeral listener, dials the coordinator, and sends a `HELLO` advertising
//! its listener port; once all processes reported in, the coordinator
//! broadcasts the address table and the workers complete the mesh (the
//! higher index dials the lower), so only the coordinator address must be
//! agreed on out of band — everything else is ephemeral, which is what keeps
//! parallel localhost clusters from colliding on ports.
//!
//! ## Frames
//!
//! Every post-handshake message is one frame: a fixed 56-byte header (magic,
//! kind, channel group/edge, round, source, target, payload length, payload
//! CRC-32) followed by the payload.  A bad magic, a truncated read, or a CRC
//! mismatch marks the peer dead with [`CommError::TornStream`]; EOF and
//! socket errors mark it dead with [`CommError::PeerLost`].  Death is
//! per-peer: a wait fails only when data it is still missing is owed by a
//! dead peer (TCP ordering guarantees everything a peer sent arrived before
//! its EOF), so a worker that finishes its run and exits cleanly never takes
//! down the cluster, while a peer lost mid-superstep surfaces as a typed
//! error at the superstep barrier — never as a hang.

use crate::{
    channel_credits_from_env, crc32, timeout_from_env, ChannelId, ClusterSpec, CommError,
    FaultHook, Inbox, PageChannel, Transport, WireCodec,
};
use std::collections::{BTreeSet, HashMap};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Frame and handshake magic: `b"SPNC"` ("spinning comm").
pub const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"SPNC");

/// Wire protocol version carried in the handshake; peers must match exactly.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on one frame's payload (mirrors the spill format's cap); a
/// larger advertised length is treated as a torn stream.
pub const MAX_FRAME_BYTES: usize = 1 << 28;

const FRAME_HEADER_BYTES: usize = 56;
const HELLO_BYTES: usize = 24;

const KIND_PAGES: u32 = 1;
const KIND_END_ROUND: u32 = 2;
const KIND_ALL_GATHER: u32 = 3;
const KIND_CREDIT: u32 = 4;

/// Smallest usable per-peer round window.  Two rounds are always in play
/// under barrier-synchronized supersteps (the round being credited back and
/// its successor), so [`crate::CHANNEL_CREDITS_ENV`] values below this are
/// clamped up rather than allowed to deadlock legitimate traffic.
pub const MIN_ROUND_WINDOW: usize = 2;

/// Per-peer round window when [`crate::CHANNEL_CREDITS_ENV`] is unset.
pub const DEFAULT_ROUND_WINDOW: usize = 64;

/// Extra rounds a receiver tolerates beyond its own window before declaring
/// a peer's stream misbehaved: its credit grant for the oldest round may
/// still be in flight while the peer legitimately opens the newest one.
const RECV_ROUND_SLACK: usize = 2;

/// Options for [`TcpTransport::connect`].
#[derive(Clone)]
pub struct TcpOptions {
    /// How long the rendezvous (bind, dial, handshake, mesh) may take.
    pub rendezvous_timeout: Duration,
    /// How long a blocking receive or gather may wait (defaults to the
    /// [`crate::TIMEOUT_ENV`] setting).
    pub recv_timeout: Duration,
    /// Consulted once per outbound data frame; returning `true` drops the
    /// connection at that point (seeded fault injection plugs in here).
    pub fault_hook: Option<FaultHook>,
    /// How many exchange rounds may be in flight toward one peer before a
    /// sender blocks waiting for the receiver's credit grant (defaults to
    /// [`crate::CHANNEL_CREDITS_ENV`] clamped to [`MIN_ROUND_WINDOW`], or
    /// [`DEFAULT_ROUND_WINDOW`] when unset).  Bounds inbox memory: a slow
    /// receiver throttles its senders instead of buffering unboundedly.
    pub round_window: usize,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            rendezvous_timeout: Duration::from_secs(30),
            recv_timeout: timeout_from_env(),
            fault_hook: None,
            round_window: channel_credits_from_env()
                .map(|credits| credits.max(MIN_ROUND_WINDOW))
                .unwrap_or(DEFAULT_ROUND_WINDOW),
        }
    }
}

impl std::fmt::Debug for TcpOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpOptions")
            .field("rendezvous_timeout", &self.rendezvous_timeout)
            .field("recv_timeout", &self.recv_timeout)
            .field("fault_hook", &self.fault_hook.is_some())
            .field("round_window", &self.round_window)
            .finish()
    }
}

// --- Round-window flow control -----------------------------------------------

/// `(group, edge) -> peer -> undrained rounds buffered in the inbox`.
type InboundRounds = HashMap<(u64, u64), HashMap<usize, BTreeSet<u64>>>;

/// Credit-based flow control over exchange rounds, both directions:
///
/// * **Sending** — `admit` bounds how many rounds may be open toward one
///   peer per channel.  A round opens with its first `PAGES`/`END_ROUND`
///   frame and closes when the peer's `CREDIT` grant arrives (sent when the
///   peer fully drained the round), so a slow receiver throttles its senders
///   instead of buffering frames unboundedly.
/// * **Receiving** — `note_received` mirrors the accounting for inbound
///   frames and caps how far ahead a peer may run (the window plus
///   [`RECV_ROUND_SLACK`]), so a misbehaving peer surfaces as a typed torn
///   stream instead of unbounded inbox growth.
struct FlowControl {
    /// `(group, edge, peer) -> rounds opened toward that peer, not yet
    /// credited back`.
    sent: Mutex<HashMap<(u64, u64, usize), BTreeSet<u64>>>,
    /// Wakes `admit` waiters on credit grants and peer death.
    cv: Condvar,
    received: Mutex<InboundRounds>,
    window: usize,
}

impl FlowControl {
    fn new(window: usize) -> FlowControl {
        FlowControl {
            sent: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            received: Mutex::new(HashMap::new()),
            window: window.max(1),
        }
    }

    /// Blocks until `round` fits in the window toward `peer` (bounded by
    /// `timeout`).  Fails fast when the peer dies: a dead peer can never
    /// grant the credit.
    fn admit<P>(
        &self,
        inbox: &Inbox<P>,
        id: ChannelId,
        peer: usize,
        round: u64,
        timeout: Duration,
    ) -> Result<(), CommError> {
        let deadline = Instant::now() + timeout;
        let mut sent = self.sent.lock().expect("flow control lock");
        loop {
            let rounds = sent.entry((id.group, id.edge, peer)).or_default();
            if rounds.contains(&round) || rounds.len() < self.window {
                rounds.insert(round);
                return Ok(());
            }
            drop(sent);
            if let Some(error) = inbox.dead_error(peer) {
                return Err(error);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(CommError::Timeout {
                    waiting_for: format!(
                        "round-window credit from peer {peer} \
                         (channel ({}, {}), round {round}, window {})",
                        id.group, id.edge, self.window
                    ),
                });
            }
            // Wait in short slices: a wake-up between the dead-peer check
            // and re-locking is recovered on the next slice.
            let slice = (deadline - now).min(Duration::from_millis(20));
            let guard = self.sent.lock().expect("flow control lock");
            let (guard, _) = self
                .cv
                .wait_timeout(guard, slice)
                .expect("flow control lock");
            sent = guard;
        }
    }

    /// Handles a peer's credit grant: the peer fully drained `round`.
    fn ack(&self, id: ChannelId, peer: usize, round: u64) {
        let mut sent = self.sent.lock().expect("flow control lock");
        if let Some(rounds) = sent.get_mut(&(id.group, id.edge, peer)) {
            rounds.remove(&round);
        }
        drop(sent);
        self.cv.notify_all();
    }

    /// Wakes every `admit` waiter (peer death paths call this so waiters
    /// observe the poison promptly).
    fn wake(&self) {
        self.cv.notify_all();
    }

    /// Records an inbound `PAGES`/`END_ROUND` frame from `peer`, enforcing
    /// the buffered-ahead cap.
    fn note_received(&self, id: ChannelId, peer: usize, round: u64) -> Result<(), CommError> {
        let cap = self.window + RECV_ROUND_SLACK;
        let mut received = self.received.lock().expect("flow control lock");
        let rounds = received
            .entry((id.group, id.edge))
            .or_default()
            .entry(peer)
            .or_default();
        rounds.insert(round);
        if rounds.len() > cap {
            return Err(CommError::TornStream {
                peer,
                detail: format!(
                    "peer ran {} rounds ahead of the receive window (cap {cap}) \
                     on channel ({}, {})",
                    rounds.len(),
                    id.group,
                    id.edge
                ),
            });
        }
        Ok(())
    }

    /// Forgets `round` of channel `id` after the local inbox fully drained
    /// it (the moment the credit grants go out).
    fn clear_round(&self, id: ChannelId, round: u64) {
        let mut received = self.received.lock().expect("flow control lock");
        if let Some(by_peer) = received.get_mut(&(id.group, id.edge)) {
            for rounds in by_peer.values_mut() {
                rounds.remove(&round);
            }
        }
    }
}

/// One live peer connection: the write half (framed, mutex-serialized) —
/// the read half lives in the peer's reader thread.
struct Peer {
    writer: Mutex<TcpStream>,
}

impl Peer {
    /// Tears the connection down; both the local writer and the remote
    /// reader observe it.
    fn shutdown(&self) {
        if let Ok(stream) = self.writer.lock() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

struct Shared<P> {
    spec: ClusterSpec,
    inbox: Arc<Inbox<P>>,
    /// Indexed by process; `None` at this process's own slot.
    peers: Vec<Option<Peer>>,
    recv_timeout: Duration,
    fault_hook: Option<FaultHook>,
    flow: Arc<FlowControl>,
}

impl<P> Shared<P> {
    /// Simulates a dropped connection: tears down every peer socket and
    /// marks every peer dead, so both sides observe a typed peer loss.
    fn drop_connections(&self, detail: &str) -> CommError {
        for peer in self.peers.iter().flatten() {
            peer.shutdown();
        }
        let error = CommError::PeerLost {
            peer: self.spec.index,
            detail: detail.to_owned(),
        };
        for process in 0..self.spec.processes {
            self.inbox.poison(process, error.clone());
        }
        self.flow.wake();
        error
    }

    #[allow(clippy::too_many_arguments)]
    fn write_frame(
        &self,
        process: usize,
        kind: u32,
        id: ChannelId,
        round: u64,
        from: u64,
        to: u64,
        payload: &[u8],
    ) -> Result<(), CommError> {
        // Round-carrying data frames must fit the peer's round window; the
        // first frame of a round opens it, the peer's drain credits it back.
        // CREDIT and ALL_GATHER frames are exempt — grants must never block
        // on the window they replenish, and gathers are barrier-paced.
        if kind == KIND_PAGES || kind == KIND_END_ROUND {
            self.flow
                .admit(&self.inbox, id, process, round, self.recv_timeout)?;
        }
        // CREDIT frames are also exempt from fault injection: the seeded
        // schedules count data frames, and grants riding the same wire must
        // not shift those sequences.
        if let Some(hook) = &self.fault_hook {
            if kind != KIND_END_ROUND && kind != KIND_CREDIT && hook() {
                return Err(self.drop_connections("injected connection drop"));
            }
        }
        let peer = self.peers[process].as_ref().expect("no connection to self");
        let mut header = [0u8; FRAME_HEADER_BYTES];
        header[0..4].copy_from_slice(&FRAME_MAGIC.to_le_bytes());
        header[4..8].copy_from_slice(&kind.to_le_bytes());
        header[8..16].copy_from_slice(&id.group.to_le_bytes());
        header[16..24].copy_from_slice(&id.edge.to_le_bytes());
        header[24..32].copy_from_slice(&round.to_le_bytes());
        header[32..40].copy_from_slice(&from.to_le_bytes());
        header[40..48].copy_from_slice(&to.to_le_bytes());
        header[48..52].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[52..56].copy_from_slice(&crc32(payload).to_le_bytes());
        let mut stream = peer.writer.lock().expect("peer writer lock");
        if let Err(e) = stream
            .write_all(&header)
            .and_then(|()| stream.write_all(payload))
        {
            // A failed write is not the sender's failure: a peer that exited
            // cleanly after finishing its run no longer needs this data, and
            // a crashed peer surfaces on the next wait that misses its
            // contribution.  Mark it dead and carry on.
            self.inbox.poison(
                process,
                CommError::PeerLost {
                    peer: process,
                    detail: format!("write failed: {e}"),
                },
            );
            self.flow.wake();
        }
        Ok(())
    }
}

/// The TCP transport: a full mesh of framed localhost/LAN connections
/// between the cluster's processes, demultiplexed by per-peer reader
/// threads into the shared inbox.
pub struct TcpTransport<P> {
    shared: Arc<Shared<P>>,
    counter: AtomicU64,
}

impl<P> std::fmt::Debug for TcpTransport<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("cluster", &self.shared.spec)
            .finish_non_exhaustive()
    }
}

impl<P> Drop for TcpTransport<P> {
    fn drop(&mut self) {
        // Unblock the peers' reader threads; their streams observe EOF.
        for peer in self.shared.peers.iter().flatten() {
            peer.shutdown();
        }
    }
}

impl<P: WireCodec + Send + Sync + 'static> TcpTransport<P> {
    /// Establishes the cluster with default options.
    pub fn connect(
        spec: ClusterSpec,
        coordinator: impl ToSocketAddrs,
    ) -> Result<TcpTransport<P>, CommError> {
        Self::connect_with(spec, coordinator, TcpOptions::default())
    }

    /// Establishes the cluster: process 0 binds `coordinator` and collects
    /// every worker's `HELLO`, the others dial in, and the address table
    /// broadcast completes the mesh.  Returns once every pairwise
    /// connection is up and validated.
    pub fn connect_with(
        spec: ClusterSpec,
        coordinator: impl ToSocketAddrs,
        options: TcpOptions,
    ) -> Result<TcpTransport<P>, CommError> {
        let inbox = Inbox::new();
        let flow = Arc::new(FlowControl::new(options.round_window));
        let mut peers: Vec<Option<Peer>> = (0..spec.processes).map(|_| None).collect();
        let deadline = Instant::now() + options.rendezvous_timeout;
        let mut streams: Vec<Option<TcpStream>> = (0..spec.processes).map(|_| None).collect();
        if spec.processes > 1 {
            let coordinator = coordinator
                .to_socket_addrs()
                .map_err(|e| CommError::Handshake(format!("bad coordinator address: {e}")))?
                .next()
                .ok_or_else(|| CommError::Handshake("empty coordinator address".into()))?;
            if spec.index == 0 {
                rendezvous_coordinator(&spec, coordinator, deadline, &mut streams)?;
            } else {
                rendezvous_worker(&spec, coordinator, deadline, &mut streams)?;
            }
        }
        for (process, stream) in streams.into_iter().enumerate() {
            let Some(stream) = stream else { continue };
            stream
                .set_nodelay(true)
                .map_err(|e| CommError::Handshake(format!("set_nodelay: {e}")))?;
            // Handshake phases used short read timeouts; the data plane
            // blocks indefinitely (the inbox wait bounds are the timeout).
            stream
                .set_read_timeout(None)
                .map_err(|e| CommError::Handshake(format!("clear read timeout: {e}")))?;
            let reader = stream
                .try_clone()
                .map_err(|e| CommError::Handshake(format!("clone stream: {e}")))?;
            spawn_reader::<P>(process, reader, Arc::clone(&inbox), Arc::clone(&flow));
            peers[process] = Some(Peer {
                writer: Mutex::new(stream),
            });
        }
        Ok(TcpTransport {
            shared: Arc::new(Shared {
                spec,
                inbox,
                peers,
                recv_timeout: options.recv_timeout,
                fault_hook: options.fault_hook,
                flow,
            }),
            counter: AtomicU64::new(0),
        })
    }
}

// --- Rendezvous --------------------------------------------------------------

fn handshake_bytes(spec: &ClusterSpec, listen_port: u16) -> [u8; HELLO_BYTES] {
    let mut hello = [0u8; HELLO_BYTES];
    hello[0..4].copy_from_slice(&FRAME_MAGIC.to_le_bytes());
    hello[4..8].copy_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    hello[8..12].copy_from_slice(&(spec.processes as u32).to_le_bytes());
    hello[12..16].copy_from_slice(&(spec.index as u32).to_le_bytes());
    hello[16..20].copy_from_slice(&u32::from(listen_port).to_le_bytes());
    let crc = crc32(&hello[0..20]);
    hello[20..24].copy_from_slice(&crc.to_le_bytes());
    hello
}

/// Reads and validates a peer's `HELLO`, returning `(index, listen_port)`.
fn read_handshake(stream: &mut TcpStream, spec: &ClusterSpec) -> Result<(usize, u16), CommError> {
    let mut hello = [0u8; HELLO_BYTES];
    stream
        .read_exact(&mut hello)
        .map_err(|e| CommError::Handshake(format!("short handshake: {e}")))?;
    let word = |i: usize| u32::from_le_bytes(hello[i..i + 4].try_into().expect("4 bytes"));
    if word(0) != FRAME_MAGIC {
        return Err(CommError::Handshake("bad handshake magic".into()));
    }
    if word(20) != crc32(&hello[0..20]) {
        return Err(CommError::Handshake("handshake checksum mismatch".into()));
    }
    let (version, processes, index, port) = (word(4), word(8), word(12), word(16));
    if version != PROTOCOL_VERSION {
        return Err(CommError::Handshake(format!(
            "protocol version mismatch: peer speaks v{version}, this is v{PROTOCOL_VERSION}"
        )));
    }
    if processes as usize != spec.processes {
        return Err(CommError::Handshake(format!(
            "cluster size mismatch: peer expects {processes} processes, this cluster has {}",
            spec.processes
        )));
    }
    if index as usize >= spec.processes {
        return Err(CommError::Handshake(format!(
            "peer index {index} out of range"
        )));
    }
    Ok((index as usize, port as u16))
}

/// Accepts one connection before `deadline` (the listener stays
/// non-blocking so a dead peer cannot stall the rendezvous forever).
fn accept_before(listener: &TcpListener, deadline: Instant) -> Result<TcpStream, CommError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| CommError::Handshake(format!("listener: {e}")))?;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| CommError::Handshake(format!("accepted stream: {e}")))?;
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .map_err(|e| CommError::Handshake(format!("accepted stream: {e}")))?;
                return Ok(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(CommError::Handshake(
                        "rendezvous timeout waiting for peers".into(),
                    ));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(CommError::Handshake(format!("accept failed: {e}"))),
        }
    }
}

/// Process 0: binds the coordinator address, collects every worker's
/// `HELLO`, and broadcasts the address table.
fn rendezvous_coordinator(
    spec: &ClusterSpec,
    coordinator: SocketAddr,
    deadline: Instant,
    streams: &mut [Option<TcpStream>],
) -> Result<(), CommError> {
    let listener = TcpListener::bind(coordinator)
        .map_err(|e| CommError::Handshake(format!("bind coordinator {coordinator}: {e}")))?;
    let mut table: Vec<Option<SocketAddr>> = vec![None; spec.processes];
    for _ in 1..spec.processes {
        let mut stream = accept_before(&listener, deadline)?;
        let (index, port) = read_handshake(&mut stream, spec)?;
        if streams[index].is_some() {
            return Err(CommError::Handshake(format!(
                "two peers both claim worker index {index}"
            )));
        }
        let mut addr = stream
            .peer_addr()
            .map_err(|e| CommError::Handshake(format!("peer address: {e}")))?;
        addr.set_port(port);
        table[index] = Some(addr);
        streams[index] = Some(stream);
    }
    // Broadcast the address table: worker i needs the listeners of workers
    // 1..i (it dials lower indexes; higher indexes dial it).
    let mut payload = Vec::with_capacity(spec.processes * 8);
    for entry in table.iter().skip(1) {
        let addr = entry.expect("all workers reported in");
        let ip = match addr.ip() {
            std::net::IpAddr::V4(ip) => ip.octets(),
            std::net::IpAddr::V6(_) => {
                return Err(CommError::Handshake(
                    "IPv6 peers are not supported by the rendezvous table".into(),
                ))
            }
        };
        payload.extend_from_slice(&ip);
        payload.extend_from_slice(&addr.port().to_le_bytes());
    }
    let crc = crc32(&payload).to_le_bytes();
    for stream in streams.iter_mut().flatten() {
        stream
            .write_all(&payload)
            .and_then(|()| stream.write_all(&crc))
            .map_err(|e| CommError::Handshake(format!("address table broadcast: {e}")))?;
    }
    Ok(())
}

/// Process `i > 0`: binds an ephemeral mesh listener, dials the
/// coordinator, receives the address table, then dials every lower-index
/// worker and accepts every higher-index one.
fn rendezvous_worker(
    spec: &ClusterSpec,
    coordinator: SocketAddr,
    deadline: Instant,
    streams: &mut [Option<TcpStream>],
) -> Result<(), CommError> {
    let listener = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| CommError::Handshake(format!("bind mesh listener: {e}")))?;
    let listen_port = listener
        .local_addr()
        .map_err(|e| CommError::Handshake(format!("mesh listener address: {e}")))?
        .port();
    // The coordinator may start after this worker: retry until the deadline.
    let mut coordinator_stream = loop {
        match TcpStream::connect_timeout(&coordinator, Duration::from_secs(2)) {
            Ok(stream) => break stream,
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(CommError::Handshake(format!(
                        "cannot reach coordinator {coordinator}: {e}"
                    )));
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    };
    coordinator_stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| CommError::Handshake(format!("coordinator stream: {e}")))?;
    coordinator_stream
        .write_all(&handshake_bytes(spec, listen_port))
        .map_err(|e| CommError::Handshake(format!("send handshake: {e}")))?;
    // The address table lists the mesh listeners of workers 1..processes.
    let mut table = vec![0u8; (spec.processes - 1) * 6 + 4];
    coordinator_stream
        .read_exact(&mut table)
        .map_err(|e| CommError::Handshake(format!("read address table: {e}")))?;
    let (payload, crc) = table.split_at(table.len() - 4);
    if u32::from_le_bytes(crc.try_into().expect("4 bytes")) != crc32(payload) {
        return Err(CommError::Handshake(
            "address table checksum mismatch".into(),
        ));
    }
    streams[0] = Some(coordinator_stream);
    let peer_addr = |worker: usize| {
        let entry = &payload[(worker - 1) * 6..worker * 6];
        let ip = std::net::Ipv4Addr::new(entry[0], entry[1], entry[2], entry[3]);
        let port = u16::from_le_bytes(entry[4..6].try_into().expect("2 bytes"));
        SocketAddr::from((ip, port))
    };
    // Dial every lower-index worker; identify with a HELLO (port unused).
    for (worker, slot) in streams.iter_mut().enumerate().take(spec.index).skip(1) {
        let mut stream = TcpStream::connect_timeout(&peer_addr(worker), Duration::from_secs(10))
            .map_err(|e| CommError::Handshake(format!("dial worker {worker}: {e}")))?;
        stream
            .write_all(&handshake_bytes(spec, 0))
            .map_err(|e| CommError::Handshake(format!("mesh handshake to {worker}: {e}")))?;
        *slot = Some(stream);
    }
    // Accept every higher-index worker.
    for _ in spec.index + 1..spec.processes {
        let mut stream = accept_before(&listener, deadline)?;
        let (index, _) = read_handshake(&mut stream, spec)?;
        if index <= spec.index || streams[index].is_some() {
            return Err(CommError::Handshake(format!(
                "unexpected mesh connection from worker {index}"
            )));
        }
        streams[index] = Some(stream);
    }
    Ok(())
}

// --- Reader threads ----------------------------------------------------------

/// Reads `buf.len()` bytes; distinguishes clean EOF at a frame boundary
/// (`Ok(false)`) from EOF mid-buffer (an error naming the torn read).
fn read_full(stream: &mut TcpStream, buf: &mut [u8]) -> Result<bool, String> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(format!(
                    "stream ended after {filled} of {} bytes",
                    buf.len()
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("read failed: {e}")),
        }
    }
    Ok(true)
}

/// One reader thread per peer: reads frames, validates them, and
/// demultiplexes into the inbox.  Any stream defect marks the peer dead —
/// every wait still owed data by it sees the typed error.
fn spawn_reader<P: WireCodec + Send + Sync + 'static>(
    peer: usize,
    mut stream: TcpStream,
    inbox: Arc<Inbox<P>>,
    flow: Arc<FlowControl>,
) {
    std::thread::Builder::new()
        .name(format!("comm-reader-{peer}"))
        .spawn(move || {
            let error = reader_loop(peer, &mut stream, &inbox, &flow);
            inbox.poison(peer, error);
            // An admit waiter blocked on this peer's credit must re-check.
            flow.wake();
        })
        .expect("spawn comm reader thread");
}

fn reader_loop<P: WireCodec + Send + Sync>(
    peer: usize,
    stream: &mut TcpStream,
    inbox: &Inbox<P>,
    flow: &FlowControl,
) -> CommError {
    let torn = |detail: String| CommError::TornStream { peer, detail };
    let lost = |detail: String| CommError::PeerLost { peer, detail };
    loop {
        let mut header = [0u8; FRAME_HEADER_BYTES];
        match read_full(stream, &mut header) {
            Ok(false) => return lost("connection closed".into()),
            Ok(true) => {}
            Err(detail) => {
                // EOF inside a header is a torn frame; a socket-level error
                // is a lost peer.
                return if detail.starts_with("stream ended") {
                    torn(detail)
                } else {
                    lost(detail)
                };
            }
        }
        let word32 = |i: usize| u32::from_le_bytes(header[i..i + 4].try_into().expect("4 bytes"));
        let word64 = |i: usize| u64::from_le_bytes(header[i..i + 8].try_into().expect("8 bytes"));
        if word32(0) != FRAME_MAGIC {
            return torn(format!("bad frame magic {:#010x}", word32(0)));
        }
        let kind = word32(4);
        let id = ChannelId::new(word64(8), word64(16));
        let round = word64(24);
        let from = word64(32) as usize;
        let to = word64(40) as usize;
        let payload_len = word32(48) as usize;
        let expected_crc = word32(52);
        if payload_len > MAX_FRAME_BYTES {
            return torn(format!("frame claims {payload_len} payload bytes"));
        }
        let mut payload = vec![0u8; payload_len];
        match read_full(stream, &mut payload) {
            Ok(true) => {}
            Ok(false) => return torn("stream ended before frame payload".into()),
            Err(detail) => {
                return if detail.starts_with("stream ended") {
                    torn(detail)
                } else {
                    lost(detail)
                }
            }
        }
        if crc32(&payload) != expected_crc {
            return torn(format!(
                "frame CRC mismatch (round {round}, {payload_len} bytes)"
            ));
        }
        match kind {
            KIND_PAGES => {
                if let Err(error) = flow.note_received(id, peer, round) {
                    return error;
                }
                match decode_pages::<P>(&payload) {
                    Ok(pages) => inbox.deliver(id, round, from, to, pages),
                    Err(detail) => return torn(detail),
                }
            }
            KIND_END_ROUND => {
                if let Err(error) = flow.note_received(id, peer, round) {
                    return error;
                }
                inbox.finish(id, round, from)
            }
            KIND_ALL_GATHER => match decode_gather(&payload) {
                Ok(values) => inbox.gather_insert(id.group, round, from, values),
                Err(detail) => return torn(detail),
            },
            KIND_CREDIT => flow.ack(id, peer, round),
            other => return torn(format!("unknown frame kind {other}")),
        }
    }
}

// --- Payload codecs ----------------------------------------------------------

fn encode_pages<P: WireCodec>(pages: &[Arc<P>], out: &mut Vec<u8>) {
    out.extend_from_slice(&(pages.len() as u32).to_le_bytes());
    for page in pages {
        let len_at = out.len();
        out.extend_from_slice(&0u32.to_le_bytes());
        page.encode(out);
        let encoded = (out.len() - len_at - 4) as u32;
        out[len_at..len_at + 4].copy_from_slice(&encoded.to_le_bytes());
    }
}

fn decode_pages<P: WireCodec>(payload: &[u8]) -> Result<Vec<Arc<P>>, String> {
    let take4 = |offset: usize| -> Result<u32, String> {
        payload
            .get(offset..offset + 4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
            .ok_or_else(|| "pages payload truncated".to_owned())
    };
    let count = take4(0)? as usize;
    let mut pages = Vec::with_capacity(count);
    let mut offset = 4usize;
    for _ in 0..count {
        let len = take4(offset)? as usize;
        offset += 4;
        let bytes = payload
            .get(offset..offset + len)
            .ok_or_else(|| "page truncated inside frame".to_owned())?;
        pages.push(Arc::new(P::decode(bytes)?));
        offset += len;
    }
    if offset != payload.len() {
        return Err(format!(
            "pages payload has {} trailing bytes",
            payload.len() - offset
        ));
    }
    Ok(pages)
}

fn encode_gather(values: &[u64], out: &mut Vec<u8>) {
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn decode_gather(payload: &[u8]) -> Result<Vec<u64>, String> {
    if payload.len() < 4 {
        return Err("gather payload truncated".into());
    }
    let count = u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes")) as usize;
    if payload.len() != 4 + count * 8 {
        return Err("gather payload length mismatch".into());
    }
    Ok(payload[4..]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect())
}

// --- The Transport implementation --------------------------------------------

struct TcpChannel<P> {
    id: ChannelId,
    partitions: usize,
    shared: Arc<Shared<P>>,
}

impl<P: WireCodec + Send + Sync + 'static> Transport<P> for TcpTransport<P> {
    fn cluster(&self) -> ClusterSpec {
        self.shared.spec
    }

    fn allocate(&self) -> u64 {
        self.counter.fetch_add(1, Ordering::Relaxed)
    }

    fn channel(&self, id: ChannelId, partitions: usize) -> Arc<dyn PageChannel<P>> {
        Arc::new(TcpChannel {
            id,
            partitions,
            shared: Arc::clone(&self.shared),
        })
    }

    fn all_gather(
        &self,
        id: ChannelId,
        round: u64,
        values: &[u64],
    ) -> Result<Vec<Vec<u64>>, CommError> {
        let shared = &self.shared;
        let mut payload = Vec::with_capacity(4 + values.len() * 8);
        encode_gather(values, &mut payload);
        for process in 0..shared.spec.processes {
            if process == shared.spec.index {
                continue;
            }
            shared.write_frame(
                process,
                KIND_ALL_GATHER,
                id,
                round,
                shared.spec.index as u64,
                0,
                &payload,
            )?;
        }
        shared
            .inbox
            .gather_insert(id.group, round, shared.spec.index, values.to_vec());
        shared
            .inbox
            .wait_gather(id.group, round, shared.spec.processes, shared.recv_timeout)
    }
}

impl<P: WireCodec + Send + Sync + 'static> PageChannel<P> for TcpChannel<P> {
    fn send(
        &self,
        round: u64,
        from: usize,
        to: usize,
        pages: Vec<Arc<P>>,
    ) -> Result<(), CommError> {
        if pages.is_empty() {
            return Ok(());
        }
        let shared = &self.shared;
        let owner = shared.spec.owner(to, self.partitions);
        if owner == shared.spec.index {
            // Loopback: the pages move by pointer, exactly like the local
            // backend.
            shared.inbox.deliver(self.id, round, from, to, pages);
            return Ok(());
        }
        let mut payload = Vec::new();
        encode_pages(&pages, &mut payload);
        shared.write_frame(
            owner,
            KIND_PAGES,
            self.id,
            round,
            from as u64,
            to as u64,
            &payload,
        )
    }

    fn finish_round(&self, round: u64, from: usize) -> Result<(), CommError> {
        let shared = &self.shared;
        for process in 0..shared.spec.processes {
            if process == shared.spec.index {
                continue;
            }
            shared.write_frame(
                process,
                KIND_END_ROUND,
                self.id,
                round,
                from as u64,
                u64::MAX,
                &[],
            )?;
        }
        shared.inbox.finish(self.id, round, from);
        Ok(())
    }

    fn recv(&self, round: u64, to: usize) -> Result<Vec<(usize, Vec<Arc<P>>)>, CommError> {
        let shared = &self.shared;
        let owned = self
            .partitions
            .checked_div(shared.spec.processes)
            .unwrap_or(self.partitions)
            .max(1);
        let (batches, round_done) = shared.inbox.wait_recv(
            self.id,
            round,
            to,
            self.partitions,
            owned,
            shared.recv_timeout,
            |source| shared.spec.owner(source, self.partitions),
        )?;
        if round_done {
            // Every owned target drained: the round's inbox state is gone,
            // so grant each peer a fresh round credit.  Every peer sent at
            // least its END_ROUND frames here, so every peer has this round
            // open in its window.
            shared.flow.clear_round(self.id, round);
            for process in 0..shared.spec.processes {
                if process == shared.spec.index {
                    continue;
                }
                shared.write_frame(
                    process,
                    KIND_CREDIT,
                    self.id,
                    round,
                    shared.spec.index as u64,
                    0,
                    &[],
                )?;
            }
        }
        Ok(batches)
    }
}

#[cfg(test)]
impl<P> TcpTransport<P> {
    /// Test-only: writes raw bytes straight onto the connection to `peer`,
    /// bypassing the framing — how the torn-stream tests corrupt the wire.
    pub(crate) fn inject_raw(&self, peer: usize, bytes: &[u8]) {
        let peer = self.shared.peers[peer].as_ref().expect("peer connection");
        let mut stream = peer.writer.lock().expect("peer writer lock");
        stream.write_all(bytes).expect("raw injection write");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The test payload: a length-checked byte blob.
    #[derive(Debug, PartialEq, Eq)]
    struct Blob(Vec<u8>);

    impl WireCodec for Blob {
        fn encode(&self, out: &mut Vec<u8>) {
            out.extend_from_slice(&self.0);
        }
        fn decode(bytes: &[u8]) -> Result<Self, String> {
            Ok(Blob(bytes.to_vec()))
        }
    }

    fn free_coordinator_addr() -> SocketAddr {
        // Bind-then-drop: the kernel hands out a port that stays free long
        // enough for the pair to rendezvous on it.
        TcpListener::bind("127.0.0.1:0")
            .expect("probe listener")
            .local_addr()
            .expect("probe address")
    }

    fn pair(options: TcpOptions) -> (TcpTransport<Blob>, TcpTransport<Blob>) {
        let worker_options = options.clone();
        pair_with(options, worker_options)
    }

    fn pair_with(
        coordinator_options: TcpOptions,
        worker_options: TcpOptions,
    ) -> (TcpTransport<Blob>, TcpTransport<Blob>) {
        let addr = free_coordinator_addr();
        let worker = std::thread::spawn(move || {
            TcpTransport::<Blob>::connect_with(
                ClusterSpec::new(2, 1).unwrap(),
                addr,
                worker_options,
            )
        });
        let coordinator = TcpTransport::<Blob>::connect_with(
            ClusterSpec::new(2, 0).unwrap(),
            addr,
            coordinator_options,
        )
        .expect("coordinator connects");
        let worker = worker
            .join()
            .expect("worker thread")
            .expect("worker connects");
        (coordinator, worker)
    }

    #[test]
    fn pages_round_trip_across_the_wire_in_source_order() {
        let (a, b) = pair(TcpOptions::default());
        // 2 partitions over 2 processes: process 0 owns partition 0.
        let ca = a.channel(ChannelId::new(0, 0), 2);
        let cb = b.channel(ChannelId::new(0, 0), 2);
        ca.send(1, 0, 1, vec![Arc::new(Blob(vec![1, 2, 3]))])
            .unwrap();
        ca.send(1, 0, 1, vec![Arc::new(Blob(vec![4]))]).unwrap();
        ca.finish_round(1, 0).unwrap();
        cb.send(1, 1, 0, vec![Arc::new(Blob(vec![9; 100_000]))])
            .unwrap();
        cb.finish_round(1, 1).unwrap();
        let at_b = cb.recv(1, 1).unwrap();
        assert_eq!(at_b.len(), 1);
        assert_eq!(at_b[0].0, 0);
        assert_eq!(*at_b[0].1[0], Blob(vec![1, 2, 3]));
        assert_eq!(*at_b[0].1[1], Blob(vec![4]));
        let at_a = ca.recv(1, 0).unwrap();
        assert_eq!(at_a.len(), 1);
        assert_eq!(at_a[0].0, 1);
        assert_eq!(*at_a[0].1[0], Blob(vec![9; 100_000]));
    }

    #[test]
    fn all_gather_is_a_barrier_with_everyones_values() {
        let (a, b) = pair(TcpOptions::default());
        let id = ChannelId::new(7, 0);
        let from_b = std::thread::spawn(move || {
            let g = b.all_gather(id, 1, &[10, 11]).unwrap();
            (b, g)
        });
        let at_a = a.all_gather(id, 1, &[20, 21]).unwrap();
        let (_b, at_b) = from_b.join().unwrap();
        assert_eq!(at_a, vec![vec![20, 21], vec![10, 11]]);
        assert_eq!(at_b, at_a);
    }

    #[test]
    fn garbage_on_the_wire_surfaces_as_a_torn_stream() {
        let (a, b) = pair(TcpOptions::default());
        a.inject_raw(1, &[0xAB; 2 * FRAME_HEADER_BYTES]);
        let cb = b.channel(ChannelId::new(0, 0), 2);
        let err = cb.recv(1, 1).unwrap_err();
        assert!(
            matches!(err, CommError::TornStream { peer: 0, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn crc_mismatch_surfaces_as_a_torn_stream() {
        let (a, b) = pair(TcpOptions::default());
        // A well-formed header whose payload fails the checksum.
        let mut frame = [0u8; FRAME_HEADER_BYTES + 4];
        frame[0..4].copy_from_slice(&FRAME_MAGIC.to_le_bytes());
        frame[4..8].copy_from_slice(&KIND_END_ROUND.to_le_bytes());
        frame[48..52].copy_from_slice(&4u32.to_le_bytes());
        frame[52..56].copy_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        a.inject_raw(1, &frame);
        let cb = b.channel(ChannelId::new(0, 0), 2);
        let err = cb.recv(1, 1).unwrap_err();
        assert!(
            matches!(err, CommError::TornStream { peer: 0, ref detail } if detail.contains("CRC")),
            "got {err:?}"
        );
    }

    #[test]
    fn truncated_frame_surfaces_as_a_torn_stream() {
        let (a, b) = pair(TcpOptions::default());
        // A header promising 64 payload bytes, then the connection dies
        // after 3.
        let mut frame = Vec::new();
        frame.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        frame.extend_from_slice(&KIND_PAGES.to_le_bytes());
        frame.extend_from_slice(&[0u8; 40]);
        frame.extend_from_slice(&64u32.to_le_bytes());
        frame.extend_from_slice(&0u32.to_le_bytes());
        frame.extend_from_slice(&[1, 2, 3]);
        a.inject_raw(1, &frame);
        drop(a);
        let cb = b.channel(ChannelId::new(0, 0), 2);
        let err = cb.recv(1, 1).unwrap_err();
        assert!(
            matches!(err, CommError::TornStream { peer: 0, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn peer_disconnect_mid_round_surfaces_as_peer_lost_not_a_hang() {
        let (a, b) = pair(TcpOptions::default());
        let cb = b.channel(ChannelId::new(0, 0), 2);
        cb.finish_round(1, 1).unwrap();
        drop(a); // Peer 0 goes away before finishing round 1.
        let err = cb.recv(1, 1).unwrap_err();
        assert!(
            matches!(err, CommError::PeerLost { peer: 0, .. }),
            "got {err:?}"
        );
    }

    /// A well-formed END_ROUND frame as raw bytes (empty payload, CRC 0).
    fn end_round_frame(round: u64, from: u64) -> [u8; FRAME_HEADER_BYTES] {
        let mut frame = [0u8; FRAME_HEADER_BYTES];
        frame[0..4].copy_from_slice(&FRAME_MAGIC.to_le_bytes());
        frame[4..8].copy_from_slice(&KIND_END_ROUND.to_le_bytes());
        frame[24..32].copy_from_slice(&round.to_le_bytes());
        frame[32..40].copy_from_slice(&from.to_le_bytes());
        frame[40..48].copy_from_slice(&u64::MAX.to_le_bytes());
        frame[52..56].copy_from_slice(&crc32(&[]).to_le_bytes());
        frame
    }

    #[test]
    fn far_future_rounds_overflow_the_receive_window_as_a_typed_error() {
        // Regression: the inbox used to buffer frames for arbitrarily
        // far-future rounds from any peer without limit.  A peer running
        // past the receive cap must surface as a typed error, not growth.
        let receiver_options = TcpOptions {
            round_window: MIN_ROUND_WINDOW,
            ..Default::default()
        };
        let (a, b) = pair_with(TcpOptions::default(), receiver_options);
        // Bypass the sender-side window with raw (but valid) frames: rounds
        // 1..=cap fit, round cap+1 trips the cap.
        let cap = MIN_ROUND_WINDOW + RECV_ROUND_SLACK;
        for round in 1..=(cap as u64 + 1) {
            a.inject_raw(1, &end_round_frame(round, 0));
        }
        // The overflow poisons the peer; a wait on a round the dead peer
        // never finished surfaces the typed error.  (The injected rounds
        // themselves completed from peer 0's side, so waiting on one of
        // them would just wait for the local finish.)
        let cb = b.channel(ChannelId::new(0, 0), 2);
        let probe = cap as u64 + 2;
        cb.finish_round(probe, 1).unwrap();
        let err = cb.recv(probe, 1).unwrap_err();
        assert!(
            matches!(err, CommError::TornStream { peer: 0, ref detail }
                if detail.contains("ahead of the receive window")),
            "got {err:?}"
        );
    }

    #[test]
    fn slow_receiver_throttles_sender_until_the_drain_grants_credit() {
        // Window of 1 round with a short admit deadline on the sender.
        let sender_options = TcpOptions {
            round_window: 1,
            recv_timeout: Duration::from_millis(200),
            ..Default::default()
        };
        let (a, b) = pair_with(sender_options, TcpOptions::default());
        let ca = a.channel(ChannelId::new(0, 0), 2);
        let cb = b.channel(ChannelId::new(0, 0), 2);
        // Round 1 opens the window; round 2 must block and time out while
        // the receiver has not drained round 1.
        ca.finish_round(1, 0).unwrap();
        let err = ca.finish_round(2, 0).unwrap_err();
        assert!(matches!(err, CommError::Timeout { .. }), "got {err:?}");
        // The receiver drains round 1, granting the credit back...
        cb.finish_round(1, 1).unwrap();
        let drained = cb.recv(1, 1).unwrap();
        assert!(drained.is_empty());
        // ...which unblocks round 2 (retry until the grant frame lands).
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match ca.finish_round(2, 0) {
                Ok(()) => break,
                Err(CommError::Timeout { .. }) if Instant::now() < deadline => {}
                Err(e) => panic!("unexpected error: {e:?}"),
            }
        }
    }

    #[test]
    fn protocol_version_mismatch_fails_the_handshake() {
        let addr = free_coordinator_addr();
        let imposter = std::thread::spawn(move || {
            // Dial the coordinator speaking protocol version 999.
            let deadline = Instant::now() + Duration::from_secs(10);
            let mut stream = loop {
                match TcpStream::connect_timeout(&addr, Duration::from_secs(1)) {
                    Ok(s) => break s,
                    Err(_) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(10))
                    }
                    Err(e) => panic!("imposter cannot dial: {e}"),
                }
            };
            let spec = ClusterSpec::new(2, 1).unwrap();
            let mut hello = handshake_bytes(&spec, 1);
            hello[4..8].copy_from_slice(&999u32.to_le_bytes());
            let crc = crc32(&hello[0..20]);
            hello[20..24].copy_from_slice(&crc.to_le_bytes());
            stream.write_all(&hello).expect("imposter hello");
            stream
        });
        let result = TcpTransport::<Blob>::connect_with(
            ClusterSpec::new(2, 0).unwrap(),
            addr,
            TcpOptions::default(),
        );
        let _stream = imposter.join().unwrap();
        let err = result.expect_err("version mismatch must fail");
        assert!(
            matches!(err, CommError::Handshake(ref d) if d.contains("version")),
            "got {err:?}"
        );
    }

    #[test]
    fn injected_connection_drop_is_a_typed_peer_loss_on_both_sides() {
        use std::sync::atomic::AtomicBool;
        let armed = Arc::new(AtomicBool::new(false));
        let hook_armed = Arc::clone(&armed);
        let options = TcpOptions {
            fault_hook: Some(Arc::new(move || hook_armed.load(Ordering::Relaxed))),
            ..Default::default()
        };
        // Only the coordinator carries the hook.
        let addr = free_coordinator_addr();
        let worker = std::thread::spawn(move || {
            TcpTransport::<Blob>::connect_with(
                ClusterSpec::new(2, 1).unwrap(),
                addr,
                TcpOptions::default(),
            )
            .expect("worker connects")
        });
        let a = TcpTransport::<Blob>::connect_with(ClusterSpec::new(2, 0).unwrap(), addr, options)
            .expect("coordinator connects");
        let b = worker.join().unwrap();
        armed.store(true, Ordering::Relaxed);
        let ca = a.channel(ChannelId::new(0, 0), 2);
        let err = ca.send(1, 0, 1, vec![Arc::new(Blob(vec![1]))]).unwrap_err();
        assert!(
            matches!(err, CommError::PeerLost { ref detail, .. } if detail.contains("injected")),
            "got {err:?}"
        );
        // The victim's side observes the drop too — as an EOF-driven loss.
        let cb = b.channel(ChannelId::new(0, 0), 2);
        let err = cb.recv(1, 1).unwrap_err();
        assert!(
            matches!(err, CommError::PeerLost { peer: 0, .. }),
            "got {err:?}"
        );
    }
}
