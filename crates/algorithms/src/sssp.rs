//! Single-source shortest paths as an incremental iteration.
//!
//! SSSP is one of the algorithms the paper names as having sparse
//! computational dependencies (Section 1): relaxing one vertex's distance
//! only affects its neighbours.  The workset iteration mirrors the Connected
//! Components template: solution records `(vid, distance)`, workset records
//! `(vid, candidate distance)`, and an expansion that sends `distance + 1`
//! (unit edge weights) to the updated vertex's neighbours.

use crate::common::edge_records;
use dataflow::prelude::*;
use graphdata::{Graph, VertexId};
use spinning_core::prelude::*;
use std::sync::Arc;

/// Distance assigned to vertices that are unreachable from the source.
pub const UNREACHABLE: i64 = i64::MAX;

/// The outcome of an SSSP run.
#[derive(Debug)]
pub struct SsspResult {
    /// Distance from the source per vertex ([`UNREACHABLE`] if disconnected).
    /// Only final when [`SsspResult::converged`] is `true`.
    pub distances: Vec<i64>,
    /// Number of supersteps executed.
    pub supersteps: usize,
    /// `false` when the superstep bound truncated the run; distances may
    /// still shrink in that case.
    pub converged: bool,
    /// Per-superstep statistics.
    pub stats: IterationRunStats,
}

/// Builds the SSSP workset iteration for a graph with unit edge weights.
fn build_iteration(graph: &Graph) -> WorksetIteration {
    let update = Arc::new(UpdateClosure(
        |key: &Key, current: Option<&Record>, candidates: &[Record]| {
            let best = candidates
                .iter()
                .map(|r| r.long(1))
                .min()
                .expect("non-empty candidates");
            match current {
                Some(c) if c.long(1) <= best => None,
                _ => Some(Record::pair(key.values()[0].as_long(), best)),
            }
        },
    ));
    let expand = Arc::new(ExpandClosure(
        |delta: &Record, edges: &[Record], out: &mut Vec<Record>| {
            let next_distance = delta.long(1) + 1;
            for e in edges {
                out.push(Record::pair(e.long(1), next_distance));
            }
        },
    ));
    WorksetIteration::builder(vec![0], vec![0], update, expand)
        .constant_input(edge_records(graph), vec![0], vec![0])
        .comparator(Arc::new(|a: &Record, b: &Record| b.long(1).cmp(&a.long(1))))
        .build()
}

/// Runs single-source shortest paths from `source` using the given execution
/// mode and hash partition routing.
pub fn sssp(
    graph: &Graph,
    source: VertexId,
    parallelism: usize,
    mode: ExecutionMode,
) -> Result<SsspResult> {
    sssp_with_routing(graph, source, parallelism, mode, WorksetRouting::Hash)
}

/// Runs single-source shortest paths with an explicit partition routing
/// scheme — [`WorksetRouting::Range`] gives every worker a contiguous
/// vertex-id interval (splitters sampled from the initial distance vector)
/// while producing exactly the same distances.
pub fn sssp_with_routing(
    graph: &Graph,
    source: VertexId,
    parallelism: usize,
    mode: ExecutionMode,
    routing: WorksetRouting,
) -> Result<SsspResult> {
    let config = WorksetConfig::new(parallelism)
        .with_mode(mode)
        .with_routing(routing);
    sssp_with_config(graph, source, &config)
}

/// Runs single-source shortest paths under a fully explicit
/// [`WorksetConfig`] — routing scheme, superstep bound and memory budget
/// included.  A finite [`WorksetConfig::memory_budget`] spills the frontier
/// exchange's candidate pages to disk, so the traversal runs in bounded
/// memory on long-tail graphs.
pub fn sssp_with_config(
    graph: &Graph,
    source: VertexId,
    config: &WorksetConfig,
) -> Result<SsspResult> {
    let result = sssp_records(graph, source, config)?;
    let mut distances = vec![UNREACHABLE; graph.num_vertices()];
    for record in &result.solution {
        distances[record.long(0) as usize] = record.long(1);
    }
    Ok(SsspResult {
        distances,
        supersteps: result.supersteps,
        converged: result.converged,
        stats: result.stats,
    })
}

/// Like [`sssp_with_config`] but returns the raw [`WorksetResult`]: the
/// solution as `(vid, distance)` records instead of a dense distance vector.
/// This is the entry point for cluster workers — with a multi-process
/// [`WorksetConfig::transport`] each process's result holds only the
/// solution partitions it owns, and densifying per process would plant
/// holes; concatenating the workers' records in index order reproduces the
/// single-process record stream.
pub fn sssp_records(
    graph: &Graph,
    source: VertexId,
    config: &WorksetConfig,
) -> Result<WorksetResult> {
    let iteration = build_iteration(graph);
    // S0: the source is at distance 0, everything else unreachable.
    let initial_solution: Vec<Record> = graph
        .vertices()
        .map(|v| {
            let distance = if v == source { 0 } else { UNREACHABLE };
            Record::pair(i64::from(v), distance)
        })
        .collect();
    // W0: distance-1 candidates for the source's neighbours.
    let initial_workset: Vec<Record> = graph
        .neighbors(source)
        .iter()
        .map(|&t| Record::pair(i64::from(t), 1))
        .collect();
    iteration.run(initial_solution, initial_workset, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracles;
    use graphdata::{chain, rmat, RmatParams};

    #[test]
    fn matches_the_bfs_oracle_on_a_chain() {
        let graph = chain(64);
        let result = sssp(&graph, 0, 2, ExecutionMode::BatchIncremental).unwrap();
        assert_eq!(result.distances, oracles::sssp(&graph, 0));
        // The number of supersteps tracks the eccentricity of the source.
        assert!(result.supersteps >= 63);
    }

    #[test]
    fn matches_the_oracle_on_power_law_graphs_in_all_modes() {
        let graph = rmat(300, 1500, RmatParams::default(), 31).symmetrize();
        let expected = oracles::sssp(&graph, 5);
        for mode in [
            ExecutionMode::BatchIncremental,
            ExecutionMode::Microstep,
            ExecutionMode::AsynchronousMicrostep,
        ] {
            let result = sssp(&graph, 5, 4, mode).unwrap();
            assert_eq!(
                result.distances, expected,
                "mode {mode:?} disagrees with the oracle"
            );
        }
    }

    #[test]
    fn unreachable_vertices_keep_the_sentinel_distance() {
        let graph = Graph::undirected_from_edges(5, &[(0, 1), (1, 2)]);
        let result = sssp(&graph, 0, 2, ExecutionMode::Microstep).unwrap();
        assert_eq!(result.distances[3], UNREACHABLE);
        assert_eq!(result.distances[4], UNREACHABLE);
        assert_eq!(result.distances[..3], [0, 1, 2]);
    }

    #[test]
    fn workset_only_contains_the_frontier() {
        let graph = chain(100);
        let result = sssp(&graph, 0, 1, ExecutionMode::BatchIncremental).unwrap();
        // On a chain the frontier is a single vertex, so every superstep
        // inspects exactly one or two candidates — never the whole graph.
        for s in &result.stats.per_iteration {
            assert!(s.elements_inspected <= 2);
        }
    }
}
