//! Sequential reference implementations ("oracles").
//!
//! Every distributed algorithm in this crate is tested against a
//! straightforward single-threaded implementation of the same computation.

use graphdata::{Graph, VertexId};
use std::collections::VecDeque;

/// Sequential PageRank by power iteration with the given damping factor.
///
/// This follows the paper's batch formulation `p = A × p` (plus the usual
/// teleport term): mass of dangling vertices is *not* redistributed, exactly
/// like the iterative-dataflow implementation, so the two can be compared
/// bit-for-bit up to floating-point associativity.
pub fn pagerank(graph: &Graph, iterations: usize, damping: f64) -> Vec<f64> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut ranks = vec![1.0 / n as f64; n];
    for _ in 0..iterations {
        let mut next = vec![(1.0 - damping) / n as f64; n];
        for v in graph.vertices() {
            let degree = graph.degree(v);
            if degree == 0 {
                continue;
            }
            let share = damping * ranks[v as usize] / degree as f64;
            for &t in graph.neighbors(v) {
                next[t as usize] += share;
            }
        }
        ranks = next;
    }
    ranks
}

/// Sequential weakly connected components; re-exported from the graph crate's
/// union-find oracle for convenience.
pub fn connected_components(graph: &Graph) -> Vec<VertexId> {
    graph.components_oracle()
}

/// Sequential single-source shortest paths over unit edge weights (BFS).
/// Unreachable vertices get `i64::MAX`.
pub fn sssp(graph: &Graph, source: VertexId) -> Vec<i64> {
    let mut dist = vec![i64::MAX; graph.num_vertices()];
    if (source as usize) >= graph.num_vertices() {
        return dist;
    }
    dist[source as usize] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &t in graph.neighbors(v) {
            if dist[t as usize] == i64::MAX {
                dist[t as usize] = d + 1;
                queue.push_back(t);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdata::{chain, figure1_graph, ring, star};

    #[test]
    fn pagerank_conserves_mass_without_dangling_vertices() {
        // A ring has no dangling vertices, so the rank mass stays exactly 1.
        let g = ring(64);
        let ranks = pagerank(&g, 30, 0.85);
        let sum: f64 = ranks.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "rank mass must be conserved, got {sum}"
        );
        assert!(ranks.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn pagerank_on_power_law_graph_stays_bounded_and_positive() {
        let g = graphdata::rmat(256, 2048, graphdata::RmatParams::default(), 11).symmetrize();
        let ranks = pagerank(&g, 30, 0.85);
        let sum: f64 = ranks.iter().sum();
        // Isolated vertices lose their mass to the teleport-less sink, so the
        // sum is at most 1 but stays well above zero.
        assert!(sum <= 1.0 + 1e-9);
        assert!(sum > 0.2);
        assert!(ranks.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn pagerank_on_a_ring_is_uniform() {
        let g = ring(10);
        let ranks = pagerank(&g, 50, 0.85);
        for &r in &ranks {
            assert!((r - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_hub_receives_the_most_rank() {
        let g = star(20);
        let ranks = pagerank(&g, 50, 0.85);
        let hub = ranks[0];
        assert!(ranks.iter().skip(1).all(|&r| r < hub));
    }

    #[test]
    fn sssp_distances_on_a_chain() {
        let g = chain(6);
        assert_eq!(sssp(&g, 0), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(sssp(&g, 3), vec![3, 2, 1, 0, 1, 2]);
    }

    #[test]
    fn sssp_marks_unreachable_vertices() {
        let g = Graph::undirected_from_edges(4, &[(0, 1)]);
        let d = sssp(&g, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], i64::MAX);
        assert_eq!(d[3], i64::MAX);
    }

    #[test]
    fn connected_components_delegates_to_the_union_find() {
        let g = figure1_graph();
        assert_eq!(connected_components(&g), g.components_oracle());
    }
}
