//! Adaptive (incremental) PageRank.
//!
//! Section 7.2 of the paper points out that the *adaptive* version of
//! PageRank [Kamvar et al.] — where parts of the rank vector that have
//! already converged stop being recomputed — can be expressed as an
//! incremental iteration but is hard to express in Pregel, because Pregel
//! couples vertex activation with messaging while the workset abstraction
//! separates the two.
//!
//! This module implements the push-style ("Gauss–Southwell") formulation as
//! a workset iteration: the solution set holds `(pid, rank)`, the working set
//! holds pending rank mass `(pid, residual)`, and a vertex only propagates
//! when the accumulated residual exceeds a threshold.  Vertices whose
//! neighbourhood has converged therefore drop out of the computation — the
//! same sparse-dependency effect the Connected Components experiments show.

use crate::common::edge_records_with_degree;
use dataflow::prelude::*;
use graphdata::Graph;
use spinning_core::prelude::*;
use std::sync::Arc;

/// The outcome of an adaptive PageRank run.
#[derive(Debug)]
pub struct AdaptivePageRankResult {
    /// Final (unnormalised residual-pushed) ranks per vertex.  The values
    /// approximate the damped PageRank up to the chosen tolerance.
    pub ranks: Vec<f64>,
    /// Number of supersteps executed.
    pub supersteps: usize,
    /// `false` when the run was truncated by the superstep bound before the
    /// residuals fell below the tolerance everywhere.
    pub converged: bool,
    /// Per-superstep statistics.
    pub stats: IterationRunStats,
}

/// Configuration of the adaptive PageRank computation.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Damping factor.
    pub damping: f64,
    /// Residual threshold below which a vertex stops propagating.
    pub tolerance: f64,
    /// Degree of parallelism.
    pub parallelism: usize,
    /// Execution mode (batch incremental by default).
    pub mode: ExecutionMode,
}

impl AdaptiveConfig {
    /// A configuration with the usual damping of 0.85 and a tolerance scaled
    /// for graphs of a few hundred thousand vertices.
    pub fn new(parallelism: usize) -> Self {
        AdaptiveConfig {
            damping: 0.85,
            tolerance: 1e-9,
            parallelism,
            mode: ExecutionMode::BatchIncremental,
        }
    }

    /// Sets the residual threshold.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Sets the execution mode.
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }
}

/// Runs adaptive PageRank on `graph`.
///
/// Solution records are `(pid, rank)`; delta records are `(pid, rank,
/// pushed_residual)` so the expansion knows how much new mass to distribute;
/// workset records are `(pid, residual share)`.
pub fn adaptive_pagerank(graph: &Graph, config: &AdaptiveConfig) -> Result<AdaptivePageRankResult> {
    let n = graph.num_vertices();
    if n == 0 {
        return Ok(AdaptivePageRankResult {
            ranks: Vec::new(),
            supersteps: 0,
            converged: true,
            stats: IterationRunStats::default(),
        });
    }
    let damping = config.damping;
    let tolerance = config.tolerance;

    let update = Arc::new(UpdateClosure(
        move |key: &Key, current: Option<&Record>, candidates: &[Record]| {
            let residual: f64 = candidates.iter().map(|r| r.double(1)).sum();
            if residual < tolerance {
                return None;
            }
            let rank = current.map(|c| c.double(1)).unwrap_or(0.0);
            Some(Record::new(vec![
                key.values()[0].clone(),
                Value::Double(rank + residual),
                Value::Double(residual),
            ]))
        },
    ));
    let expand = Arc::new(ExpandClosure(
        move |delta: &Record, edges: &[Record], out: &mut Vec<Record>| {
            if edges.is_empty() {
                return;
            }
            let residual = delta.double(2);
            // Edge records carry (source, target, out_degree(source)).
            let degree = edges[0].long(2) as f64;
            let share = damping * residual / degree;
            for e in edges {
                out.push(Record::long_double(e.long(1), share));
            }
        },
    ));

    let iteration = WorksetIteration::builder(vec![0], vec![0], update, expand)
        .constant_input(edge_records_with_degree(graph), vec![0], vec![0])
        .build();

    // Every vertex starts with rank 0 and a pending residual of (1 - d) / n
    // (the teleport mass), which seeds the initial working set.
    let initial_solution: Vec<Record> = graph
        .vertices()
        .map(|v| Record::long_double(i64::from(v), 0.0))
        .collect();
    let seed = (1.0 - damping) / n as f64;
    let initial_workset: Vec<Record> = graph
        .vertices()
        .map(|v| Record::long_double(i64::from(v), seed))
        .collect();

    let workset_config = WorksetConfig::new(config.parallelism).with_mode(config.mode);
    let result = iteration.run(initial_solution, initial_workset, &workset_config)?;

    let mut ranks = vec![0.0; n];
    for record in &result.solution {
        ranks[record.long(0) as usize] = record.double(1);
    }
    Ok(AdaptivePageRankResult {
        ranks,
        supersteps: result.supersteps,
        converged: result.converged,
        stats: result.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracles;
    use graphdata::{ring, rmat, star, RmatParams};

    fn normalized(mut ranks: Vec<f64>) -> Vec<f64> {
        let sum: f64 = ranks.iter().sum();
        if sum > 0.0 {
            for r in &mut ranks {
                *r /= sum;
            }
        }
        ranks
    }

    #[test]
    fn approximates_the_power_iteration_on_a_ring() {
        let graph = ring(32);
        let result = adaptive_pagerank(&graph, &AdaptiveConfig::new(2)).unwrap();
        let ranks = normalized(result.ranks);
        for &r in &ranks {
            assert!((r - 1.0 / 32.0).abs() < 1e-6);
        }
    }

    #[test]
    fn ranking_order_matches_the_oracle_on_a_power_law_graph() {
        let graph = rmat(200, 1400, RmatParams::default(), 77).symmetrize();
        let exact = oracles::pagerank(&graph, 60, 0.85);
        let adaptive =
            adaptive_pagerank(&graph, &AdaptiveConfig::new(4).with_tolerance(1e-10)).unwrap();
        let approx = normalized(adaptive.ranks);
        let exact = normalized(exact);
        // Compare the identity of the 10 highest-ranked vertices.
        let top = |ranks: &[f64]| -> Vec<usize> {
            let mut idx: Vec<usize> = (0..ranks.len()).collect();
            idx.sort_by(|&a, &b| ranks[b].total_cmp(&ranks[a]));
            idx.truncate(10);
            idx
        };
        let overlap = top(&approx)
            .iter()
            .filter(|v| top(&exact).contains(v))
            .count();
        assert!(overlap >= 8, "only {overlap} of the top-10 vertices agree");
    }

    #[test]
    fn hub_dominates_on_a_star() {
        let graph = star(64);
        let result = adaptive_pagerank(&graph, &AdaptiveConfig::new(2)).unwrap();
        let hub = result.ranks[0];
        assert!(result.ranks.iter().skip(1).all(|&r| r < hub));
    }

    #[test]
    fn looser_tolerance_means_less_work() {
        let graph = rmat(300, 2000, RmatParams::default(), 5).symmetrize();
        let strict =
            adaptive_pagerank(&graph, &AdaptiveConfig::new(2).with_tolerance(1e-12)).unwrap();
        let loose =
            adaptive_pagerank(&graph, &AdaptiveConfig::new(2).with_tolerance(1e-5)).unwrap();
        assert!(loose.stats.total_messages() < strict.stats.total_messages());
    }

    #[test]
    fn empty_graph_is_handled() {
        let graph = graphdata::Graph::from_edges(0, &[]);
        let result = adaptive_pagerank(&graph, &AdaptiveConfig::new(1)).unwrap();
        assert!(result.ranks.is_empty());
    }
}
