//! PageRank as a bulk iterative dataflow (Section 4.1, Figures 3 and 4).
//!
//! The rank vector is the partial solution of a bulk iteration; every
//! iteration joins the vector with the sparse transition matrix on `pid`,
//! then groups the partial ranks by `tid` and sums them.  The optimizer
//! chooses between the two execution plans of Figure 4 — broadcasting the
//! rank vector (good for small models) or partitioning both inputs — but the
//! choice can also be forced, which is what the system-comparison benchmarks
//! (Figures 7 and 8) do to obtain the "Stratosphere BC" and "Stratosphere
//! Part." series.

use crate::common::{initial_ranks, records_to_f64_vec, transition_matrix};
use dataflow::prelude::*;
use graphdata::Graph;
use optimizer::{Annotations, FieldCopy};
use spinning_core::prelude::*;
use std::sync::Arc;

/// Which of the Figure 4 plans to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageRankPlan {
    /// Let the cost-based optimizer decide (the paper's default behaviour).
    Optimized,
    /// Force the left-hand plan of Figure 4: broadcast the rank vector, keep
    /// the matrix cached partitioned by `tid`, aggregate locally.
    ForceBroadcast,
    /// Force the right-hand plan of Figure 4: hash-partition the vector and
    /// the matrix on the join key and re-partition the join result for the
    /// aggregation (the Pegasus/Spark-style plan).
    ForcePartition,
}

/// Configuration of a PageRank run.
#[derive(Debug, Clone)]
pub struct PageRankConfig {
    /// Number of bulk iterations (the paper uses 20).
    pub iterations: usize,
    /// Degree of parallelism.
    pub parallelism: usize,
    /// Damping factor (0.85 unless stated otherwise).
    pub damping: f64,
    /// Plan selection.
    pub plan: PageRankPlan,
    /// Disables the executor's streaming operator chains, materializing every
    /// forward edge (the equivalence-suite oracle; see `dataflow::exec`).
    pub force_materialized: bool,
    /// Per-edge in-flight page credits of the fused (streaming) chains.
    /// `None` falls back to `SPINNING_CHANNEL_CREDITS` or the executor
    /// default; results are identical either way.
    pub channel_credits: Option<usize>,
}

impl PageRankConfig {
    /// 20 iterations at the given parallelism with the optimizer choosing the
    /// plan.
    pub fn new(parallelism: usize) -> Self {
        PageRankConfig {
            iterations: 20,
            parallelism,
            damping: 0.85,
            plan: PageRankPlan::Optimized,
            force_materialized: false,
            channel_credits: None,
        }
    }

    /// Sets the number of iterations.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets the plan variant.
    pub fn with_plan(mut self, plan: PageRankPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Materializes every forward edge instead of streaming fused chains —
    /// see [`PageRankConfig::force_materialized`].
    pub fn with_force_materialized(mut self, force: bool) -> Self {
        self.force_materialized = force;
        self
    }

    /// Bounds each fused chain edge to `credits` in-flight pages — see
    /// [`PageRankConfig::channel_credits`].  Clamped to at least 1.
    pub fn with_channel_credits(mut self, credits: usize) -> Self {
        self.channel_credits = Some(credits.max(1));
        self
    }
}

/// The outcome of a PageRank run.
#[derive(Debug)]
pub struct PageRankResult {
    /// Final ranks indexed by vertex id.
    pub ranks: Vec<f64>,
    /// Whether the run completed its termination criterion.  PageRank runs a
    /// fixed iteration count, so this is always `true`; the field mirrors the
    /// other algorithm results so callers can check uniformly.
    pub converged: bool,
    /// Per-iteration statistics.
    pub stats: IterationRunStats,
    /// Human-readable description of the physical plan that was executed.
    pub plan_description: String,
}

/// Builds the PageRank step dataflow of Figure 3 and returns the plan, the
/// iteration input (the rank-vector source), the ids of the join and reduce
/// operators, and the optimizer annotations.
pub fn build_step_plan(
    graph: &Graph,
    damping: f64,
) -> (Plan, OperatorId, OperatorId, OperatorId, Annotations) {
    let n = graph.num_vertices() as f64;
    let matrix_records = transition_matrix(graph);
    let matrix_len = matrix_records.len();

    let mut plan = Plan::new();
    let vector = plan.source("rank-vector", Vec::new());
    plan.set_estimated_records(vector, graph.num_vertices());
    let matrix = plan.source_shared("transition-matrix", matrix_records);
    plan.set_estimated_records(matrix, matrix_len);

    // Match on pid: vector field 0 == matrix field 1; emit (tid, d * r * p).
    let join = plan.match_join(
        "join-p-A",
        vector,
        matrix,
        vec![0],
        vec![1],
        Arc::new(MatchClosure(
            move |p: &Record, a: &Record, out: &mut Collector| {
                out.collect(Record::long_double(
                    a.long(0),
                    damping * p.double(1) * a.double(2),
                ));
            },
        )),
    );
    plan.set_estimated_records(join, matrix_len);

    // Reduce on tid: sum the partial ranks and add the teleport term.
    let teleport = (1.0 - damping) / n;
    let reduce = plan.reduce(
        "sum-partial-ranks",
        join,
        vec![0],
        Arc::new(ReduceClosure(
            move |key: &[Value], group: &[Record], out: &mut Collector| {
                let sum: f64 = group.iter().map(|r| r.double(1)).sum();
                out.collect(Record::long_double(key[0].as_long(), teleport + sum));
            },
        )),
    );
    plan.set_estimated_records(reduce, graph.num_vertices());
    plan.sink("next-ranks", reduce);

    let mut annotations = Annotations::new();
    annotations.add_copy(
        join,
        FieldCopy {
            slot: 1,
            in_field: 0,
            out_field: 0,
        },
    );
    annotations.add_copy(
        reduce,
        FieldCopy {
            slot: 0,
            in_field: 0,
            out_field: 0,
        },
    );
    (plan, vector, join, reduce, annotations)
}

/// Runs PageRank on `graph`.
pub fn pagerank(graph: &Graph, config: &PageRankConfig) -> Result<PageRankResult> {
    let (plan, vector, join, reduce, annotations) = build_step_plan(graph, config.damping);
    let iteration = BulkIteration::new(
        plan.clone(),
        vector,
        "next-ranks",
        TerminationCriterion::FixedIterations(config.iterations),
    );

    let result = match config.plan {
        PageRankPlan::Optimized => {
            let mut bulk_config = BulkConfig::new(config.parallelism)
                .with_annotations(annotations)
                .with_force_materialized(config.force_materialized);
            if let Some(credits) = config.channel_credits {
                bulk_config = bulk_config.with_channel_credits(credits);
            }
            iteration.run(initial_ranks(graph), &bulk_config)?
        }
        forced => {
            // Build the forced physical plan by hand and drive the feedback
            // loop directly, mirroring what BulkIteration::run does.
            let physical = forced_physical_plan(&plan, join, reduce, config.parallelism, forced)?;
            let mut exec_config =
                ExecConfig::new().with_force_materialized(config.force_materialized);
            if let Some(credits) = config.channel_credits {
                exec_config = exec_config.with_channel_credits(credits);
            }
            run_with_physical(
                &iteration,
                physical,
                exec_config,
                initial_ranks(graph),
                config.iterations,
            )?
        }
    };

    let ranks = records_to_f64_vec(&result.solution, graph.num_vertices());
    Ok(PageRankResult {
        ranks,
        converged: result.converged,
        stats: result.stats,
        plan_description: match config.plan {
            PageRankPlan::Optimized => "optimizer-selected plan".to_owned(),
            PageRankPlan::ForceBroadcast => "broadcast rank vector, cached matrix".to_owned(),
            PageRankPlan::ForcePartition => "partitioned vector and matrix".to_owned(),
        },
    })
}

/// Builds one of the two Figure 4 plans explicitly.
fn forced_physical_plan(
    plan: &Plan,
    join: OperatorId,
    reduce: OperatorId,
    parallelism: usize,
    variant: PageRankPlan,
) -> Result<PhysicalPlan> {
    let mut physical = default_physical_plan(plan, parallelism)?;
    match variant {
        PageRankPlan::ForceBroadcast => {
            // Left-hand plan: broadcast p, keep A partitioned (and cached) by
            // tid so the aggregation needs no repartitioning.
            let join_choice = physical.choices.get_mut(&join).expect("join choice");
            join_choice.input_ships[0] = ShipStrategy::Broadcast;
            join_choice.input_ships[1] = ShipStrategy::PartitionHash(vec![0]);
            join_choice.local = LocalStrategy::HashJoinBuildLeft;
            let reduce_choice = physical.choices.get_mut(&reduce).expect("reduce choice");
            reduce_choice.input_ships[0] = ShipStrategy::Forward;
        }
        PageRankPlan::ForcePartition => {
            // Right-hand plan: partition p and A on the join key and
            // repartition the join result by tid for the aggregation.
            let join_choice = physical.choices.get_mut(&join).expect("join choice");
            join_choice.input_ships[0] = ShipStrategy::PartitionHash(vec![0]);
            join_choice.input_ships[1] = ShipStrategy::PartitionHash(vec![1]);
            join_choice.local = LocalStrategy::HashJoinBuildRight;
            let reduce_choice = physical.choices.get_mut(&reduce).expect("reduce choice");
            reduce_choice.input_ships[0] = ShipStrategy::PartitionHash(vec![0]);
        }
        PageRankPlan::Optimized => {}
    }
    // The matrix edge lies on the constant data path in both variants.
    physical.cache_input(join, 1);
    Ok(physical)
}

/// Drives the feedback loop for an explicitly provided physical plan.
fn run_with_physical(
    iteration: &BulkIteration,
    mut physical: PhysicalPlan,
    exec_config: ExecConfig,
    initial: Vec<Record>,
    iterations: usize,
) -> Result<BulkIterationResult> {
    use std::time::Instant;
    let start = Instant::now();
    let executor = Executor::with_config(exec_config);
    let mut cache = IntermediateCache::new();
    let mut current = Arc::new(initial);
    let mut stats = IterationRunStats::default();
    let input = iteration_input(iteration);
    for i in 1..=iterations {
        let iter_start = Instant::now();
        physical
            .plan
            .replace_source_data(input, Arc::clone(&current))?;
        let result = executor.execute_with_cache(&physical, &mut cache)?;
        let execution_stats = result.stats.clone();
        // The result is owned, so the next rank vector moves out un-copied.
        let next = result.into_sink("next-ranks")?;
        let mut iter_stats = IterationStats::for_iteration(i);
        iter_stats.workset_size = current.len();
        iter_stats.elements_inspected = current.len();
        iter_stats.elements_changed = next.len();
        iter_stats.messages_sent = execution_stats.shipped_records + execution_stats.local_records;
        iter_stats.messages_shipped = execution_stats.shipped_records;
        iter_stats.execution = Some(execution_stats);
        iter_stats.elapsed = iter_start.elapsed();
        stats.per_iteration.push(iter_stats);
        current = Arc::new(next);
    }
    stats.total_elapsed = start.elapsed();
    Ok(BulkIterationResult {
        solution: Arc::try_unwrap(current).unwrap_or_else(|arc| (*arc).clone()),
        iterations,
        // Fixed-count feedback loops always complete their criterion.
        converged: true,
        stats,
    })
}

/// The rank-vector source of the iteration's step plan.
fn iteration_input(iteration: &BulkIteration) -> OperatorId {
    iteration
        .plan()
        .operators()
        .iter()
        .find(|op| op.name == "rank-vector")
        .map(|op| op.id)
        .expect("PageRank step plan always has a rank-vector source")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracles;
    use graphdata::{ring, rmat, star, RmatParams};

    fn assert_close(a: &[f64], b: &[f64], tolerance: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tolerance, "rank {i}: {x} vs {y}");
        }
    }

    #[test]
    fn dataflow_pagerank_matches_the_oracle_on_a_small_web_graph() {
        let graph = rmat(200, 1600, RmatParams::default(), 3).symmetrize();
        let expected = oracles::pagerank(&graph, 10, 0.85);
        let config = PageRankConfig::new(4).with_iterations(10);
        let result = pagerank(&graph, &config).unwrap();
        assert_close(&result.ranks, &expected, 1e-9);
        assert_eq!(result.stats.iterations(), 10);
    }

    #[test]
    fn broadcast_and_partition_plans_compute_identical_ranks() {
        let graph = rmat(150, 900, RmatParams::default(), 9).symmetrize();
        let broadcast = pagerank(
            &graph,
            &PageRankConfig::new(4)
                .with_iterations(8)
                .with_plan(PageRankPlan::ForceBroadcast),
        )
        .unwrap();
        let partition = pagerank(
            &graph,
            &PageRankConfig::new(4)
                .with_iterations(8)
                .with_plan(PageRankPlan::ForcePartition),
        )
        .unwrap();
        assert_close(&broadcast.ranks, &partition.ranks, 1e-12);
        let oracle = oracles::pagerank(&graph, 8, 0.85);
        assert_close(&broadcast.ranks, &oracle, 1e-9);
    }

    #[test]
    fn hub_of_a_star_graph_gets_the_highest_rank() {
        let graph = star(32);
        let result = pagerank(&graph, &PageRankConfig::new(2).with_iterations(15)).unwrap();
        let hub = result.ranks[0];
        assert!(result.ranks.iter().skip(1).all(|&r| r < hub));
    }

    #[test]
    fn ring_graph_has_uniform_ranks() {
        let graph = ring(24);
        let result = pagerank(&graph, &PageRankConfig::new(3).with_iterations(25)).unwrap();
        for &r in &result.ranks {
            assert!((r - 1.0 / 24.0).abs() < 1e-9);
        }
    }

    #[test]
    fn broadcast_plan_ships_fewer_records_for_small_vectors() {
        // On a graph with many more edges than vertices the broadcast plan
        // avoids repartitioning the large joined result, so it ships less.
        let graph = rmat(300, 6000, RmatParams::default(), 21).symmetrize();
        let bc = pagerank(
            &graph,
            &PageRankConfig::new(4)
                .with_iterations(4)
                .with_plan(PageRankPlan::ForceBroadcast),
        )
        .unwrap();
        let part = pagerank(
            &graph,
            &PageRankConfig::new(4)
                .with_iterations(4)
                .with_plan(PageRankPlan::ForcePartition),
        )
        .unwrap();
        let shipped = |result: &PageRankResult| -> usize {
            result
                .stats
                .per_iteration
                .iter()
                .skip(1) // the first iteration pays for the constant path
                .map(|s| s.messages_shipped)
                .sum()
        };
        assert!(
            shipped(&bc) < shipped(&part),
            "broadcast {} vs partition {}",
            shipped(&bc),
            shipped(&part)
        );
    }

    #[test]
    fn optimizer_choice_matches_one_of_the_forced_plans() {
        let graph = rmat(100, 1200, RmatParams::default(), 5).symmetrize();
        let auto = pagerank(&graph, &PageRankConfig::new(4).with_iterations(5)).unwrap();
        let oracle = oracles::pagerank(&graph, 5, 0.85);
        assert_close(&auto.ranks, &oracle, 1e-9);
    }

    #[test]
    fn per_iteration_statistics_are_complete() {
        let graph = ring(50);
        let result = pagerank(&graph, &PageRankConfig::new(2).with_iterations(6)).unwrap();
        assert_eq!(result.stats.per_iteration.len(), 6);
        for (i, s) in result.stats.per_iteration.iter().enumerate() {
            assert_eq!(s.iteration, i + 1);
            assert_eq!(s.workset_size, 50);
            assert!(s.execution.is_some());
        }
    }
}
