//! Connected Components in all the paper's variants.
//!
//! * [`cc_bulk`] — the bulk-iterative FIXPOINT-CC of Table 1 as a dataflow:
//!   every iteration recomputes the full component mapping by joining it with
//!   the neighbourhood table and taking the minimum per vertex.
//! * [`cc_incremental`] — the incremental INCR-CC of Table 1 / Figure 5 as a
//!   workset iteration with the `InnerCoGroup` update (batch incremental).
//! * [`cc_microstep`] — the MICRO-CC variant using the record-at-a-time
//!   `Match` update, executed in supersteps.
//! * [`cc_async`] — the same microstep program executed asynchronously
//!   without superstep barriers.
//!
//! All variants converge to the same fixpoint: every vertex is labelled with
//! the smallest vertex id of its weakly connected component.

use crate::common::{
    edge_records, initial_component_candidates, initial_components, records_to_vec,
};
use dataflow::prelude::*;
use graphdata::Graph;
use optimizer::{Annotations, FieldCopy};
use spinning_core::prelude::*;
use std::sync::Arc;

/// The outcome of a Connected Components run.
#[derive(Debug)]
pub struct ComponentsResult {
    /// Component id per vertex (indexed by vertex id).  Only a fixpoint when
    /// [`ComponentsResult::converged`] is `true`.
    pub components: Vec<i64>,
    /// Number of iterations (bulk) or supersteps (incremental) executed.
    pub iterations: usize,
    /// `false` when the run was truncated by
    /// [`ComponentsConfig::max_iterations`] before reaching the fixpoint, in
    /// which case `components` holds a partial labelling.
    pub converged: bool,
    /// Per-iteration statistics.
    pub stats: IterationRunStats,
}

/// Configuration shared by all Connected Components variants.
#[derive(Debug, Clone)]
pub struct ComponentsConfig {
    /// Degree of parallelism.
    pub parallelism: usize,
    /// Upper bound on iterations / supersteps.
    pub max_iterations: usize,
    /// Partition routing of the workset variants (hash by default; range
    /// routing gives every worker a contiguous vertex-id interval).  The
    /// bulk variant plans its own exchanges and ignores this.
    pub routing: WorksetRouting,
    /// Budget on the bytes the exchanges may buffer in memory before sealed
    /// pages spill to disk — the workset variants budget their superstep
    /// exchange, the bulk variant its dataflow exchanges and loop-invariant
    /// cache.  Unlimited by default.
    pub memory_budget: MemoryBudget,
    /// Checkpointing and recovery policy, passed through to the workset
    /// driver (superstep boundaries) or the bulk driver (iteration
    /// boundaries).  The asynchronous variant ignores it.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Deterministic fault injector, passed through to the underlying run.
    pub fault: FaultInjector,
    /// Transport of the workset variants' superstep exchange.  Defaults to
    /// the in-process backend; a multi-process transport turns the run into
    /// one SPMD cluster worker (use [`cc_workset_records`], which returns
    /// the worker's owned partitions instead of densifying).  The bulk
    /// variant is single-process and ignores it.
    pub transport: TransportHandle,
    /// Per-edge credit pool of the bounded channels (see
    /// `WorksetConfig::channel_credits`): the asynchronous variant bounds
    /// each worker→worker queue to this many records, the superstep variants
    /// spill an outbox once it holds this many sealed pages, and the bulk
    /// variant caps every fused (streaming) chain edge at this many in-flight
    /// pages.  `None` falls back to `SPINNING_CHANNEL_CREDITS` or the layer
    /// defaults; results are identical either way.
    pub channel_credits: Option<usize>,
    /// Disables the bulk variant's streaming operator chains, materializing
    /// every forward edge like the pre-streaming executor did.  The escape
    /// hatch exists so equivalence suites can pin the chained execution
    /// byte-identical to the materializing oracle.  The workset variants
    /// have no executor chains and ignore it.
    pub force_materialized: bool,
}

impl ComponentsConfig {
    /// Default configuration: effectively unbounded iterations.
    pub fn new(parallelism: usize) -> Self {
        ComponentsConfig {
            parallelism,
            max_iterations: 100_000,
            routing: WorksetRouting::Hash,
            memory_budget: MemoryBudget::unlimited(),
            checkpoint: None,
            fault: FaultInjector::from_env(),
            transport: TransportHandle::default(),
            channel_credits: None,
            force_materialized: false,
        }
    }

    /// Bounds the number of iterations (used to reproduce the "first 20
    /// iterations of Webbase" measurement of Figure 9).
    pub fn with_max_iterations(mut self, max: usize) -> Self {
        self.max_iterations = max;
        self
    }

    /// Sets the partition routing scheme of the workset variants.
    pub fn with_routing(mut self, routing: WorksetRouting) -> Self {
        self.routing = routing;
        self
    }

    /// Routes the workset variants' superstep exchange (and the solution
    /// set) by range splitters instead of hashing.
    pub fn with_range_routing(self) -> Self {
        self.with_routing(WorksetRouting::Range)
    }

    /// Bounds the bytes the exchanges may buffer in memory (out-of-core
    /// execution).
    pub fn with_memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.memory_budget = budget;
        self
    }

    /// Enables checkpointing every `interval` supersteps (workset variants)
    /// or iterations (bulk variant) under `dir`, with recovery on failure.
    pub fn with_checkpoint(self, interval: usize, dir: impl Into<std::path::PathBuf>) -> Self {
        self.with_checkpoint_policy(CheckpointPolicy::new(interval, dir))
    }

    /// Enables checkpointing with an explicit policy.
    pub fn with_checkpoint_policy(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// Installs a fault injector (replacing the environment-configured one).
    pub fn with_fault(mut self, fault: FaultInjector) -> Self {
        self.fault = fault;
        self
    }

    /// Installs the transport the workset variants' superstep exchange runs
    /// over (see [`ComponentsConfig::transport`]).
    pub fn with_transport(mut self, transport: TransportHandle) -> Self {
        self.transport = transport;
        self
    }

    /// Bounds the bounded channels to `credits` records (async), sealed
    /// pages per superstep outbox, or in-flight pages per bulk chain edge —
    /// see [`ComponentsConfig::channel_credits`].  Clamped to at least 1.
    pub fn with_channel_credits(mut self, credits: usize) -> Self {
        self.channel_credits = Some(credits.max(1));
        self
    }

    /// Makes the bulk variant materialize every forward edge instead of
    /// streaming fused chains — see [`ComponentsConfig::force_materialized`].
    pub fn with_force_materialized(mut self, force: bool) -> Self {
        self.force_materialized = force;
        self
    }
}

/// Builds the bulk-iterative step plan: `S ⋈ N` produces a candidate per
/// neighbour, the union with `S` keeps each vertex's own label, and a Reduce
/// takes the minimum per vertex.
fn build_bulk_step_plan(graph: &Graph) -> (Plan, OperatorId, Annotations) {
    let edges = edge_records(graph);
    let edge_count = edges.len();
    let mut plan = Plan::new();
    let solution = plan.source("components", Vec::new());
    plan.set_estimated_records(solution, graph.num_vertices());
    let neighbours = plan.source_shared("neighbours", edges);
    plan.set_estimated_records(neighbours, edge_count);

    // For every edge (vid, nb) propagate the vertex's current cid to nb.
    let candidates = plan.match_join(
        "candidate-components",
        solution,
        neighbours,
        vec![0],
        vec![0],
        Arc::new(MatchClosure(
            |s: &Record, e: &Record, out: &mut Collector| {
                out.collect(Record::pair(e.long(1), s.long(1)));
            },
        )),
    );
    plan.set_estimated_records(candidates, edge_count);
    // Keep the vertex's own label in the running for the minimum.
    let with_own = plan.union("candidates-and-own", vec![candidates, solution]);
    let minimum = plan.reduce(
        "minimum-component",
        with_own,
        vec![0],
        Arc::new(ReduceClosure(
            |key: &[Value], group: &[Record], out: &mut Collector| {
                let min = group
                    .iter()
                    .map(|r| r.long(1))
                    .min()
                    .expect("group is never empty");
                out.collect(Record::pair(key[0].as_long(), min));
            },
        )),
    );
    plan.set_estimated_records(minimum, graph.num_vertices());
    plan.sink("next-components", minimum);

    let mut annotations = Annotations::new();
    annotations.add_copy(
        candidates,
        FieldCopy {
            slot: 1,
            in_field: 1,
            out_field: 0,
        },
    );
    annotations.add_copy(
        minimum,
        FieldCopy {
            slot: 0,
            in_field: 0,
            out_field: 0,
        },
    );
    (plan, solution, annotations)
}

/// The bulk-iterative Connected Components algorithm (FIXPOINT-CC).
pub fn cc_bulk(graph: &Graph, config: &ComponentsConfig) -> Result<ComponentsResult> {
    let (plan, solution, annotations) = build_bulk_step_plan(graph);
    let converged = Arc::new(|prev: &[Record], next: &[Record]| {
        let mut a = prev.to_vec();
        let mut b = next.to_vec();
        a.sort();
        b.sort();
        a == b
    });
    let iteration = BulkIteration::new(
        plan,
        solution,
        "next-components",
        TerminationCriterion::Converged {
            check: converged,
            max_iterations: config.max_iterations,
        },
    );
    let mut bulk_config = BulkConfig::new(config.parallelism)
        .with_annotations(annotations)
        .with_memory_budget(config.memory_budget)
        .with_fault(config.fault.clone())
        .with_force_materialized(config.force_materialized);
    if let Some(credits) = config.channel_credits {
        bulk_config = bulk_config.with_channel_credits(credits);
    }
    if let Some(policy) = &config.checkpoint {
        bulk_config = bulk_config.with_checkpoint_policy(policy.clone());
    }
    let result = iteration.run(initial_components(graph), &bulk_config)?;
    Ok(ComponentsResult {
        components: records_to_vec(&result.solution, graph.num_vertices()),
        iterations: result.iterations,
        converged: result.converged,
        stats: result.stats,
    })
}

/// Builds the workset iteration shared by the incremental variants: solution
/// records `(vid, cid)`, workset records `(vid, candidate cid)`, constant
/// input `N = (vid, neighbour)`.
fn build_workset_iteration(graph: &Graph, grouped: bool) -> WorksetIteration {
    // The update function of Figure 5: take the smallest candidate cid; emit
    // a delta only if it improves on the current component.
    let update: Arc<dyn UpdateFunction> = if grouped {
        Arc::new(UpdateClosure(
            |key: &Key, current: Option<&Record>, candidates: &[Record]| {
                let best = candidates
                    .iter()
                    .map(|r| r.long(1))
                    .min()
                    .expect("non-empty group");
                match current {
                    Some(c) if c.long(1) <= best => None,
                    _ => Some(Record::pair(key.values()[0].as_long(), best)),
                }
            },
        ))
    } else {
        Arc::new(UpdateClosure(
            |key: &Key, current: Option<&Record>, candidates: &[Record]| {
                let candidate = candidates[0].long(1);
                match current {
                    Some(c) if c.long(1) <= candidate => None,
                    _ => Some(Record::pair(key.values()[0].as_long(), candidate)),
                }
            },
        ))
    };
    // The expansion of Figure 5: the changed vertex's new cid becomes a
    // candidate for every neighbour.
    let expand = Arc::new(ExpandClosure(
        |delta: &Record, edges: &[Record], out: &mut Vec<Record>| {
            let cid = delta.long(1);
            for e in edges {
                out.push(Record::pair(e.long(1), cid));
            }
        },
    ));
    WorksetIteration::builder(vec![0], vec![0], update, expand)
        .constant_input(edge_records(graph), vec![0], vec![0])
        // Smaller component ids are successor states in the CPO.
        .comparator(Arc::new(|a: &Record, b: &Record| b.long(1).cmp(&a.long(1))))
        .build()
}

/// Runs the incremental Connected Components workset iteration and returns
/// the raw [`WorksetResult`]: the solution as `(vid, cid)` records instead
/// of a dense per-vertex vector.  This is the entry point for cluster
/// workers — with a multi-process [`ComponentsConfig::transport`] each
/// process's result holds only the solution partitions it owns, and
/// densifying per process would plant holes; concatenating the workers'
/// records in index order reproduces the single-process record stream.
/// `mode` selects the batch-incremental (`InnerCoGroup`) or microstep
/// (`Match`) update.
pub fn cc_workset_records(
    graph: &Graph,
    config: &ComponentsConfig,
    mode: ExecutionMode,
) -> Result<WorksetResult> {
    let grouped = mode == ExecutionMode::BatchIncremental;
    let iteration = build_workset_iteration(graph, grouped);
    let mut workset_config = WorksetConfig::new(config.parallelism)
        .with_mode(mode)
        .with_max_supersteps(config.max_iterations)
        .with_routing(config.routing)
        .with_memory_budget(config.memory_budget)
        .with_fault(config.fault.clone())
        .with_transport(config.transport.clone());
    if let Some(policy) = &config.checkpoint {
        workset_config = workset_config.with_checkpoint_policy(policy.clone());
    }
    if let Some(credits) = config.channel_credits {
        workset_config = workset_config.with_channel_credits(credits);
    }
    iteration.run(
        initial_components(graph),
        initial_component_candidates(graph),
        &workset_config,
    )
}

fn run_workset(
    graph: &Graph,
    config: &ComponentsConfig,
    mode: ExecutionMode,
) -> Result<ComponentsResult> {
    let result = cc_workset_records(graph, config, mode)?;
    Ok(ComponentsResult {
        components: records_to_vec(&result.solution, graph.num_vertices()),
        iterations: result.supersteps,
        converged: result.converged,
        stats: result.stats,
    })
}

/// The batch-incremental Connected Components algorithm (INCR-CC, CoGroup
/// variant).
pub fn cc_incremental(graph: &Graph, config: &ComponentsConfig) -> Result<ComponentsResult> {
    run_workset(graph, config, ExecutionMode::BatchIncremental)
}

/// The microstep Connected Components algorithm (MICRO-CC, Match variant)
/// executed with superstep synchronisation.
pub fn cc_microstep(graph: &Graph, config: &ComponentsConfig) -> Result<ComponentsResult> {
    run_workset(graph, config, ExecutionMode::Microstep)
}

/// The microstep Connected Components algorithm executed asynchronously,
/// without superstep barriers.
pub fn cc_async(graph: &Graph, config: &ComponentsConfig) -> Result<ComponentsResult> {
    run_workset(graph, config, ExecutionMode::AsynchronousMicrostep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdata::{chain, figure1_graph, rmat, star, DatasetProfile, RmatParams};

    fn oracle(graph: &Graph) -> Vec<i64> {
        graph
            .components_oracle()
            .into_iter()
            .map(i64::from)
            .collect()
    }

    #[test]
    fn figure1_walkthrough_bulk() {
        let graph = figure1_graph();
        let result = cc_bulk(&graph, &ComponentsConfig::new(2)).unwrap();
        assert_eq!(result.components, oracle(&graph));
        // Figure 1 shows convergence of the assignments after two steps; the
        // bulk iteration needs one extra iteration to detect the fixpoint.
        assert!(result.iterations <= 4);
    }

    #[test]
    fn figure1_walkthrough_incremental_and_microstep() {
        let graph = figure1_graph();
        for run in [cc_incremental, cc_microstep, cc_async] {
            let result = run(&graph, &ComponentsConfig::new(2)).unwrap();
            assert_eq!(
                result.components,
                oracle(&graph),
                "variant disagrees with the oracle"
            );
        }
    }

    #[test]
    fn all_variants_agree_on_a_power_law_graph() {
        let graph = rmat(400, 1600, RmatParams::default(), 17).symmetrize();
        let expected = oracle(&graph);
        let config = ComponentsConfig::new(4);
        assert_eq!(cc_bulk(&graph, &config).unwrap().components, expected);
        assert_eq!(
            cc_incremental(&graph, &config).unwrap().components,
            expected
        );
        assert_eq!(cc_microstep(&graph, &config).unwrap().components, expected);
        assert_eq!(cc_async(&graph, &config).unwrap().components, expected);
    }

    #[test]
    fn long_chain_needs_many_supersteps() {
        // The chain reproduces the Webbase long-tail behaviour: the number of
        // supersteps grows with the diameter.
        let graph = chain(200);
        let result = cc_incremental(&graph, &ComponentsConfig::new(2)).unwrap();
        assert_eq!(result.components, vec![0; 200]);
        assert!(
            result.iterations >= 100,
            "only {} supersteps",
            result.iterations
        );
    }

    #[test]
    fn star_converges_in_very_few_supersteps() {
        let graph = star(500);
        let result = cc_incremental(&graph, &ComponentsConfig::new(4)).unwrap();
        assert_eq!(result.components, vec![0; 500]);
        assert!(result.iterations <= 3);
    }

    #[test]
    fn incremental_workset_shrinks_towards_convergence() {
        let graph = DatasetProfile::foaf().generate(4096);
        let result = cc_incremental(&graph, &ComponentsConfig::new(4)).unwrap();
        let sizes: Vec<usize> = result
            .stats
            .per_iteration
            .iter()
            .map(|s| s.workset_size)
            .collect();
        assert!(sizes.len() >= 3);
        // The working set in the last superstep is a tiny fraction of the
        // first superstep's (the Figure 2 effect).
        assert!(
            (*sizes.last().unwrap() as f64) < 0.2 * sizes[0] as f64,
            "sizes: {sizes:?}"
        );
        assert_eq!(result.components, oracle(&graph));
    }

    #[test]
    fn bulk_inspects_every_vertex_each_iteration_but_incremental_does_not() {
        let graph = rmat(600, 2400, RmatParams::default(), 23).symmetrize();
        let bulk = cc_bulk(&graph, &ComponentsConfig::new(2)).unwrap();
        let incr = cc_incremental(&graph, &ComponentsConfig::new(2)).unwrap();
        // Bulk touches the whole partial solution in every iteration.
        for s in &bulk.stats.per_iteration {
            assert_eq!(s.workset_size, graph.num_vertices());
        }
        // The incremental variant touches fewer and fewer vertices.
        let last = incr.stats.per_iteration.last().unwrap();
        assert!(last.elements_inspected < graph.num_vertices());
    }

    #[test]
    fn max_iterations_truncates_the_run() {
        let graph = chain(300);
        let result =
            cc_incremental(&graph, &ComponentsConfig::new(2).with_max_iterations(5)).unwrap();
        assert_eq!(result.iterations, 5);
        // Not converged yet: far vertices still carry their own id, and the
        // wrapper says so instead of presenting the truncation as a fixpoint.
        assert!(!result.converged);
        assert_ne!(result.components, vec![0; 300]);
        let full = cc_incremental(&graph, &ComponentsConfig::new(2)).unwrap();
        assert!(full.converged);
    }

    #[test]
    fn truncated_bulk_run_reports_non_convergence() {
        let graph = chain(64);
        let result = cc_bulk(&graph, &ComponentsConfig::new(2).with_max_iterations(3)).unwrap();
        assert!(!result.converged);
        assert_ne!(result.components, vec![0; 64]);
    }
}
