//! # algorithms — the paper's evaluation workloads as iterative dataflows
//!
//! * [`mod@pagerank`] — bulk-iterative PageRank (Figure 3) with the two
//!   physical plans of Figure 4 (broadcast vs. partition), selectable or left
//!   to the optimizer.
//! * [`connected_components`] — Connected Components in all four variants the
//!   paper measures: bulk (FIXPOINT-CC), batch incremental (INCR-CC with an
//!   `InnerCoGroup`), microstep (MICRO-CC with a `Match`), and asynchronous
//!   microstep execution.
//! * [`mod@sssp`] — single-source shortest paths as an incremental iteration.
//! * [`mod@adaptive_pagerank`] — the adaptive PageRank of the related-work
//!   discussion, expressed as a workset iteration.
//! * [`oracles`] — sequential reference implementations used by the tests.
//! * [`common`] — conversions from [`graphdata::Graph`] to record form.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptive_pagerank;
pub mod common;
pub mod connected_components;
pub mod oracles;
pub mod pagerank;
pub mod sssp;

pub use crate::adaptive_pagerank::{adaptive_pagerank, AdaptiveConfig, AdaptivePageRankResult};
pub use crate::connected_components::{
    cc_async, cc_bulk, cc_incremental, cc_microstep, cc_workset_records, ComponentsConfig,
    ComponentsResult,
};
pub use crate::pagerank::{pagerank, PageRankConfig, PageRankPlan, PageRankResult};
pub use crate::sssp::{
    sssp, sssp_records, sssp_with_config, sssp_with_routing, SsspResult, UNREACHABLE,
};
