//! Conversions between graphs and the record representations the dataflow
//! algorithms consume.

use dataflow::prelude::Record;
use graphdata::Graph;
use std::sync::Arc;

/// The graph's edges as `(vid1, vid2)` records — the neighbourhood table `N`
/// of the Connected Components dataflows.  For undirected graphs the CSR
/// already contains both directions.
pub fn edge_records(graph: &Graph) -> Arc<Vec<Record>> {
    Arc::new(
        graph
            .edges()
            .map(|(s, t)| Record::pair(i64::from(s), i64::from(t)))
            .collect(),
    )
}

/// The graph's edges as `(vid1, vid2, out_degree(vid1))` records, used by the
/// adaptive PageRank expansion which needs the degree to split pushed mass.
pub fn edge_records_with_degree(graph: &Graph) -> Arc<Vec<Record>> {
    Arc::new(
        graph
            .edges()
            .map(|(s, t)| {
                Record::new(vec![
                    i64::from(s).into(),
                    i64::from(t).into(),
                    (graph.degree(s) as i64).into(),
                ])
            })
            .collect(),
    )
}

/// The initial Connected Components solution: every vertex is its own
/// component, `(vid, cid = vid)`.
pub fn initial_components(graph: &Graph) -> Vec<Record> {
    graph
        .vertices()
        .map(|v| Record::pair(i64::from(v), i64::from(v)))
        .collect()
}

/// The initial Connected Components working set: for every edge `(a, b)` the
/// candidate pair `(b, cid(a) = a)`, exactly as in Section 2.2.
pub fn initial_component_candidates(graph: &Graph) -> Vec<Record> {
    graph
        .edges()
        .map(|(s, t)| Record::pair(i64::from(t), i64::from(s)))
        .collect()
}

/// The sparse transition matrix of PageRank as `(tid, pid, probability)`
/// records: an entry per edge `pid -> tid` with probability
/// `1 / out_degree(pid)`, plus a zero entry `(v, v, 0.0)` per vertex so that
/// every page appears in the aggregation even if it has no in-links.
pub fn transition_matrix(graph: &Graph) -> Arc<Vec<Record>> {
    let mut records = Vec::with_capacity(graph.num_edges() + graph.num_vertices());
    for v in graph.vertices() {
        let degree = graph.degree(v);
        if degree > 0 {
            let p = 1.0 / degree as f64;
            for &t in graph.neighbors(v) {
                records.push(Record::triple(i64::from(t), i64::from(v), p));
            }
        }
        records.push(Record::triple(i64::from(v), i64::from(v), 0.0));
    }
    Arc::new(records)
}

/// The uniform initial rank vector `(pid, 1/n)`.
pub fn initial_ranks(graph: &Graph) -> Vec<Record> {
    let n = graph.num_vertices() as f64;
    graph
        .vertices()
        .map(|v| Record::long_double(i64::from(v), 1.0 / n))
        .collect()
}

/// Turns `(vid, value)` records into a dense vector indexed by vertex id.
pub fn records_to_vec(records: &[Record], num_vertices: usize) -> Vec<i64> {
    let mut out = vec![0i64; num_vertices];
    for r in records {
        out[r.long(0) as usize] = r.long(1);
    }
    out
}

/// Turns `(vid, rank)` records into a dense `f64` vector indexed by vertex id.
pub fn records_to_f64_vec(records: &[Record], num_vertices: usize) -> Vec<f64> {
    let mut out = vec![0.0f64; num_vertices];
    for r in records {
        out[r.long(0) as usize] = r.double(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdata::figure1_graph;

    #[test]
    fn edge_records_cover_both_directions() {
        let g = figure1_graph();
        let edges = edge_records(&g);
        assert_eq!(edges.len(), g.num_edges());
        assert!(edges.contains(&Record::pair(1, 2)));
        assert!(edges.contains(&Record::pair(2, 1)));
    }

    #[test]
    fn initial_components_assign_vid_as_cid() {
        let g = figure1_graph();
        let init = initial_components(&g);
        assert_eq!(init.len(), g.num_vertices());
        assert!(init.iter().all(|r| r.long(0) == r.long(1)));
    }

    #[test]
    fn initial_candidates_follow_the_edges() {
        let g = figure1_graph();
        let w = initial_component_candidates(&g);
        assert_eq!(w.len(), g.num_edges());
        assert!(w.contains(&Record::pair(2, 1)));
        assert!(w.contains(&Record::pair(1, 2)));
    }

    #[test]
    fn transition_matrix_rows_sum_to_one_per_source() {
        let g = figure1_graph();
        let matrix = transition_matrix(&g);
        for v in g.vertices() {
            let sum: f64 = matrix
                .iter()
                .filter(|r| r.long(1) == i64::from(v))
                .map(|r| r.double(2))
                .sum();
            if g.degree(v) > 0 {
                assert!((sum - 1.0).abs() < 1e-12, "vertex {v} sums to {sum}");
            } else {
                assert_eq!(sum, 0.0);
            }
        }
    }

    #[test]
    fn transition_matrix_includes_zero_entries_for_all_vertices() {
        let g = figure1_graph();
        let matrix = transition_matrix(&g);
        for v in g.vertices() {
            assert!(matrix.iter().any(|r| r.long(0) == i64::from(v)));
        }
    }

    #[test]
    fn dense_vector_conversions() {
        let records = vec![Record::pair(0, 5), Record::pair(2, 7)];
        assert_eq!(records_to_vec(&records, 3), vec![5, 0, 7]);
        let ranks = vec![Record::long_double(1, 0.5)];
        assert_eq!(records_to_f64_vec(&ranks, 2), vec![0.0, 0.5]);
    }

    #[test]
    fn edge_records_with_degree_carry_the_source_degree() {
        let g = figure1_graph();
        let edges = edge_records_with_degree(&g);
        for r in edges.iter() {
            let s = r.long(0) as u32;
            assert_eq!(r.long(2), g.degree(s) as i64);
        }
    }
}
