//! The optimizer's cost model.
//!
//! Costs are split into a network component (records crossing partition
//! boundaries during shipping) and a CPU component (local hashing, sorting
//! and UDF invocation work).  When optimizing an iterative plan, every cost
//! incurred on the *dynamic data path* is additionally weighted by the
//! expected number of iterations, because that part of the plan runs once per
//! iteration while the constant data path runs only once (Section 4.3).

use crate::cardinality::Cardinalities;
use dataflow::prelude::{LocalStrategy, ShipStrategy};

/// A cost value split into its components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    /// Cost of records shipped across partitions (network).
    pub network: f64,
    /// Cost of local processing (hashing, sorting, UDF calls).
    pub cpu: f64,
}

impl Cost {
    /// The zero cost.
    pub fn zero() -> Self {
        Cost::default()
    }

    /// Combined scalar cost used for plan comparison.
    pub fn total(&self) -> f64 {
        self.network + self.cpu
    }

    /// Component-wise sum.
    pub fn add(&self, other: Cost) -> Cost {
        Cost {
            network: self.network + other.network,
            cpu: self.cpu + other.cpu,
        }
    }

    /// Scales both components (used for iteration weighting).
    pub fn scale(&self, factor: f64) -> Cost {
        Cost {
            network: self.network * factor,
            cpu: self.cpu * factor,
        }
    }
}

/// Tunable weights of the cost model.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Cost charged per record crossing a partition boundary.  Network
    /// transfers dominate in the shared-nothing cluster the paper targets, so
    /// this defaults to a large multiple of the CPU weight.
    pub network_weight: f64,
    /// Cost charged per record processed locally.
    pub cpu_weight: f64,
    /// Extra per-record factor charged for sort-based strategies (stands in
    /// for the `log n` factor at the typical working-set sizes).
    pub sort_penalty: f64,
    /// Per-record CPU factor of a **range** exchange: splitter sampling,
    /// binary-search routing and — crucially — the receiver-side sort the
    /// executor performs to deliver ordered partitions.  Charged instead of
    /// (not on top of) the hash exchange's unit CPU factor, so a range plan
    /// only wins when a downstream sort it removes outweighs it.
    pub range_penalty: f64,
    /// Number of parallel instances; broadcasting replicates to
    /// `parallelism - 1` other instances.
    pub parallelism: usize,
}

impl CostModel {
    /// A cost model for the given degree of parallelism with default weights.
    pub fn new(parallelism: usize) -> Self {
        CostModel {
            network_weight: 10.0,
            cpu_weight: 1.0,
            sort_penalty: 3.0,
            // Less than 1 + sort_penalty: the memcmp prefix sort inside the
            // exchange is cheaper than the Value-comparison sort a local
            // strategy would run, but clearly more than hash routing.
            range_penalty: 2.2,
            parallelism,
        }
    }

    /// Cost of shipping `records` input records with the given strategy.
    pub fn ship_cost(&self, ship: &ShipStrategy, records: f64) -> Cost {
        // On average (p-1)/p of the records leave their partition under
        // either partitioning scheme.
        let fraction = if self.parallelism <= 1 {
            0.0
        } else {
            (self.parallelism as f64 - 1.0) / self.parallelism as f64
        };
        match ship {
            ShipStrategy::Forward => Cost::zero(),
            ShipStrategy::PartitionHash(_) => Cost {
                network: records * fraction * self.network_weight,
                cpu: records * self.cpu_weight,
            },
            ShipStrategy::PartitionRange(_) => Cost {
                network: records * fraction * self.network_weight,
                cpu: records * self.cpu_weight * self.range_penalty,
            },
            ShipStrategy::Broadcast => {
                let copies = self.parallelism.saturating_sub(1) as f64;
                Cost {
                    network: records * copies * self.network_weight,
                    cpu: records * self.cpu_weight,
                }
            }
        }
    }

    /// Cost of the operator's local strategy over its input cardinalities,
    /// assuming no input arrives pre-sorted.
    pub fn local_cost(&self, local: LocalStrategy, input_records: &[f64]) -> Cost {
        self.local_cost_sorted(local, input_records, &[])
    }

    /// Cost of the operator's local strategy when `sorted_inputs[i]` says
    /// whether input `i` already arrives sorted on the operator's key (a
    /// range-partitioned edge).  Sort-based strategies charge the
    /// [`CostModel::sort_penalty`] only for inputs they actually have to
    /// sort; a pre-sorted input costs a single merge/grouping scan.  Missing
    /// entries count as unsorted.
    pub fn local_cost_sorted(
        &self,
        local: LocalStrategy,
        input_records: &[f64],
        sorted_inputs: &[bool],
    ) -> Cost {
        let total: f64 = input_records.iter().sum();
        let sort_factor = |slot: usize| -> f64 {
            if sorted_inputs.get(slot).copied().unwrap_or(false) {
                1.0
            } else {
                self.sort_penalty
            }
        };
        let cpu = match local {
            LocalStrategy::None => total * self.cpu_weight,
            LocalStrategy::HashJoinBuildLeft | LocalStrategy::HashJoinBuildRight => {
                // Build + probe is linear in both inputs.
                total * self.cpu_weight * 1.5
            }
            LocalStrategy::SortMergeJoin | LocalStrategy::SortGroup => input_records
                .iter()
                .enumerate()
                .map(|(slot, records)| records * self.cpu_weight * sort_factor(slot))
                .sum(),
            LocalStrategy::HashGroup => total * self.cpu_weight * 1.5,
            LocalStrategy::NestedLoop => {
                let product: f64 = input_records.iter().product();
                product * self.cpu_weight
            }
        };
        Cost { network: 0.0, cpu }
    }

    /// Chooses the cheaper hash-join build side given the input cardinalities
    /// and which inputs are replicated (a replicated input is the natural
    /// build side because each instance holds the full table).
    pub fn choose_join_strategy(
        &self,
        left_records: f64,
        right_records: f64,
        left_replicated: bool,
        right_replicated: bool,
    ) -> LocalStrategy {
        if left_replicated && !right_replicated {
            LocalStrategy::HashJoinBuildLeft
        } else if right_replicated && !left_replicated {
            LocalStrategy::HashJoinBuildRight
        } else if left_records <= right_records {
            LocalStrategy::HashJoinBuildLeft
        } else {
            LocalStrategy::HashJoinBuildRight
        }
    }
}

/// Helper bundling the cardinality estimates with the cost model, since most
/// costing call sites need both.
#[derive(Debug, Clone)]
pub struct Costing {
    /// The cost model in use.
    pub model: CostModel,
    /// Estimated output cardinalities per operator.
    pub cards: Cardinalities,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shipping_is_free() {
        let m = CostModel::new(4);
        assert_eq!(m.ship_cost(&ShipStrategy::Forward, 1000.0).total(), 0.0);
    }

    #[test]
    fn broadcast_scales_with_parallelism() {
        let m = CostModel::new(4);
        let b = m.ship_cost(&ShipStrategy::Broadcast, 100.0);
        let p = m.ship_cost(&ShipStrategy::PartitionHash(vec![0]), 100.0);
        assert!(b.network > p.network);
        let m1 = CostModel::new(1);
        assert_eq!(m1.ship_cost(&ShipStrategy::Broadcast, 100.0).network, 0.0);
        assert_eq!(
            m1.ship_cost(&ShipStrategy::PartitionHash(vec![0]), 100.0)
                .network,
            0.0
        );
    }

    #[test]
    fn sort_strategies_cost_more_than_hash() {
        let m = CostModel::new(4);
        let hash = m.local_cost(LocalStrategy::HashGroup, &[1000.0]);
        let sort = m.local_cost(LocalStrategy::SortGroup, &[1000.0]);
        assert!(sort.cpu > hash.cpu);
    }

    #[test]
    fn presorted_inputs_are_not_charged_a_resort() {
        let m = CostModel::new(4);
        // Merge join over two pre-sorted (range-partitioned) inputs costs a
        // linear merge, cheaper than the hash join and far cheaper than
        // sorting both sides.
        let merge_sorted = m.local_cost_sorted(
            LocalStrategy::SortMergeJoin,
            &[1000.0, 1000.0],
            &[true, true],
        );
        let merge_unsorted = m.local_cost(LocalStrategy::SortMergeJoin, &[1000.0, 1000.0]);
        let hash_join = m.local_cost(LocalStrategy::HashJoinBuildLeft, &[1000.0, 1000.0]);
        assert_eq!(merge_sorted.cpu, 2000.0);
        assert_eq!(merge_unsorted.cpu, 6000.0);
        assert!(merge_sorted.cpu < hash_join.cpu);
        // One sorted side pays the sort only for the other.
        let half = m.local_cost_sorted(
            LocalStrategy::SortMergeJoin,
            &[1000.0, 1000.0],
            &[true, false],
        );
        assert_eq!(half.cpu, 1000.0 + 3000.0);
        // Sorted grouping beats hash grouping on a pre-sorted input.
        let group_sorted = m.local_cost_sorted(LocalStrategy::SortGroup, &[1000.0], &[true]);
        let hash_group = m.local_cost(LocalStrategy::HashGroup, &[1000.0]);
        assert!(group_sorted.cpu < hash_group.cpu);
        // Non-sort strategies ignore the flags.
        assert_eq!(
            m.local_cost_sorted(LocalStrategy::HashGroup, &[1000.0], &[true])
                .cpu,
            hash_group.cpu
        );
    }

    #[test]
    fn range_shipping_costs_more_cpu_but_the_same_network_as_hash() {
        let m = CostModel::new(4);
        let hash = m.ship_cost(&ShipStrategy::PartitionHash(vec![0]), 1000.0);
        let range = m.ship_cost(&ShipStrategy::PartitionRange(vec![0]), 1000.0);
        assert_eq!(hash.network, range.network);
        assert!(range.cpu > hash.cpu);
        // The range exchange's built-in sort is cheaper than shipping hash
        // and running a full Value-comparison sort afterwards.
        assert!(range.cpu < hash.cpu + 1000.0 * m.sort_penalty);
    }

    #[test]
    fn nested_loop_is_quadratic() {
        let m = CostModel::new(2);
        let nl = m.local_cost(LocalStrategy::NestedLoop, &[100.0, 100.0]);
        assert_eq!(nl.cpu, 10_000.0);
    }

    #[test]
    fn join_build_side_prefers_replicated_then_smaller() {
        let m = CostModel::new(4);
        assert_eq!(
            m.choose_join_strategy(1e6, 10.0, false, true),
            LocalStrategy::HashJoinBuildRight
        );
        assert_eq!(
            m.choose_join_strategy(10.0, 1e6, true, false),
            LocalStrategy::HashJoinBuildLeft
        );
        assert_eq!(
            m.choose_join_strategy(10.0, 20.0, false, false),
            LocalStrategy::HashJoinBuildLeft
        );
        assert_eq!(
            m.choose_join_strategy(30.0, 20.0, false, false),
            LocalStrategy::HashJoinBuildRight
        );
    }

    #[test]
    fn cost_arithmetic() {
        let a = Cost {
            network: 1.0,
            cpu: 2.0,
        };
        let b = Cost {
            network: 3.0,
            cpu: 4.0,
        };
        let c = a.add(b).scale(2.0);
        assert_eq!(c.network, 8.0);
        assert_eq!(c.cpu, 12.0);
        assert_eq!(c.total(), 20.0);
    }
}
