//! The optimizer's cost model.
//!
//! Costs are split into a network component (records crossing partition
//! boundaries during shipping) and a CPU component (local hashing, sorting
//! and UDF invocation work).  When optimizing an iterative plan, every cost
//! incurred on the *dynamic data path* is additionally weighted by the
//! expected number of iterations, because that part of the plan runs once per
//! iteration while the constant data path runs only once (Section 4.3).

use crate::cardinality::Cardinalities;
use dataflow::prelude::{LocalStrategy, ShipStrategy};

/// A cost value split into its components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    /// Cost of records shipped across partitions (network).
    pub network: f64,
    /// Cost of local processing (hashing, sorting, UDF calls).
    pub cpu: f64,
}

impl Cost {
    /// The zero cost.
    pub fn zero() -> Self {
        Cost::default()
    }

    /// Combined scalar cost used for plan comparison.
    pub fn total(&self) -> f64 {
        self.network + self.cpu
    }

    /// Component-wise sum.
    pub fn add(&self, other: Cost) -> Cost {
        Cost {
            network: self.network + other.network,
            cpu: self.cpu + other.cpu,
        }
    }

    /// Scales both components (used for iteration weighting).
    pub fn scale(&self, factor: f64) -> Cost {
        Cost {
            network: self.network * factor,
            cpu: self.cpu * factor,
        }
    }
}

/// Tunable weights of the cost model.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Cost charged per record crossing a partition boundary.  Network
    /// transfers dominate in the shared-nothing cluster the paper targets, so
    /// this defaults to a large multiple of the CPU weight.
    pub network_weight: f64,
    /// Cost charged per record processed locally.
    pub cpu_weight: f64,
    /// Extra per-record factor charged for sort-based strategies (stands in
    /// for the `log n` factor at the typical working-set sizes).
    pub sort_penalty: f64,
    /// Number of parallel instances; broadcasting replicates to
    /// `parallelism - 1` other instances.
    pub parallelism: usize,
}

impl CostModel {
    /// A cost model for the given degree of parallelism with default weights.
    pub fn new(parallelism: usize) -> Self {
        CostModel {
            network_weight: 10.0,
            cpu_weight: 1.0,
            sort_penalty: 3.0,
            parallelism,
        }
    }

    /// Cost of shipping `records` input records with the given strategy.
    pub fn ship_cost(&self, ship: &ShipStrategy, records: f64) -> Cost {
        match ship {
            ShipStrategy::Forward => Cost::zero(),
            ShipStrategy::PartitionHash(_) | ShipStrategy::PartitionRange(_) => {
                // On average (p-1)/p of the records leave their partition.
                let fraction = if self.parallelism <= 1 {
                    0.0
                } else {
                    (self.parallelism as f64 - 1.0) / self.parallelism as f64
                };
                Cost {
                    network: records * fraction * self.network_weight,
                    cpu: records * self.cpu_weight,
                }
            }
            ShipStrategy::Broadcast => {
                let copies = self.parallelism.saturating_sub(1) as f64;
                Cost {
                    network: records * copies * self.network_weight,
                    cpu: records * self.cpu_weight,
                }
            }
        }
    }

    /// Cost of the operator's local strategy over its input cardinalities.
    pub fn local_cost(&self, local: LocalStrategy, input_records: &[f64]) -> Cost {
        let total: f64 = input_records.iter().sum();
        let cpu = match local {
            LocalStrategy::None => total * self.cpu_weight,
            LocalStrategy::HashJoinBuildLeft | LocalStrategy::HashJoinBuildRight => {
                // Build + probe is linear in both inputs.
                total * self.cpu_weight * 1.5
            }
            LocalStrategy::SortMergeJoin => total * self.cpu_weight * self.sort_penalty,
            LocalStrategy::HashGroup => total * self.cpu_weight * 1.5,
            LocalStrategy::SortGroup => total * self.cpu_weight * self.sort_penalty,
            LocalStrategy::NestedLoop => {
                let product: f64 = input_records.iter().product();
                product * self.cpu_weight
            }
        };
        Cost { network: 0.0, cpu }
    }

    /// Chooses the cheaper hash-join build side given the input cardinalities
    /// and which inputs are replicated (a replicated input is the natural
    /// build side because each instance holds the full table).
    pub fn choose_join_strategy(
        &self,
        left_records: f64,
        right_records: f64,
        left_replicated: bool,
        right_replicated: bool,
    ) -> LocalStrategy {
        if left_replicated && !right_replicated {
            LocalStrategy::HashJoinBuildLeft
        } else if right_replicated && !left_replicated {
            LocalStrategy::HashJoinBuildRight
        } else if left_records <= right_records {
            LocalStrategy::HashJoinBuildLeft
        } else {
            LocalStrategy::HashJoinBuildRight
        }
    }
}

/// Helper bundling the cardinality estimates with the cost model, since most
/// costing call sites need both.
#[derive(Debug, Clone)]
pub struct Costing {
    /// The cost model in use.
    pub model: CostModel,
    /// Estimated output cardinalities per operator.
    pub cards: Cardinalities,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shipping_is_free() {
        let m = CostModel::new(4);
        assert_eq!(m.ship_cost(&ShipStrategy::Forward, 1000.0).total(), 0.0);
    }

    #[test]
    fn broadcast_scales_with_parallelism() {
        let m = CostModel::new(4);
        let b = m.ship_cost(&ShipStrategy::Broadcast, 100.0);
        let p = m.ship_cost(&ShipStrategy::PartitionHash(vec![0]), 100.0);
        assert!(b.network > p.network);
        let m1 = CostModel::new(1);
        assert_eq!(m1.ship_cost(&ShipStrategy::Broadcast, 100.0).network, 0.0);
        assert_eq!(
            m1.ship_cost(&ShipStrategy::PartitionHash(vec![0]), 100.0)
                .network,
            0.0
        );
    }

    #[test]
    fn sort_strategies_cost_more_than_hash() {
        let m = CostModel::new(4);
        let hash = m.local_cost(LocalStrategy::HashGroup, &[1000.0]);
        let sort = m.local_cost(LocalStrategy::SortGroup, &[1000.0]);
        assert!(sort.cpu > hash.cpu);
    }

    #[test]
    fn nested_loop_is_quadratic() {
        let m = CostModel::new(2);
        let nl = m.local_cost(LocalStrategy::NestedLoop, &[100.0, 100.0]);
        assert_eq!(nl.cpu, 10_000.0);
    }

    #[test]
    fn join_build_side_prefers_replicated_then_smaller() {
        let m = CostModel::new(4);
        assert_eq!(
            m.choose_join_strategy(1e6, 10.0, false, true),
            LocalStrategy::HashJoinBuildRight
        );
        assert_eq!(
            m.choose_join_strategy(10.0, 1e6, true, false),
            LocalStrategy::HashJoinBuildLeft
        );
        assert_eq!(
            m.choose_join_strategy(10.0, 20.0, false, false),
            LocalStrategy::HashJoinBuildLeft
        );
        assert_eq!(
            m.choose_join_strategy(30.0, 20.0, false, false),
            LocalStrategy::HashJoinBuildRight
        );
    }

    #[test]
    fn cost_arithmetic() {
        let a = Cost {
            network: 1.0,
            cpu: 2.0,
        };
        let b = Cost {
            network: 3.0,
            cpu: 4.0,
        };
        let c = a.add(b).scale(2.0);
        assert_eq!(c.network, 8.0);
        assert_eq!(c.cpu, 12.0);
        assert_eq!(c.total(), 20.0);
    }
}
