//! # optimizer — cost-based planning for (iterative) dataflows
//!
//! Reproduces the optimizer extensions of *Spinning Fast Iterative Data
//! Flows* (VLDB 2012), Sections 4.3 and 5.3:
//!
//! * classical Volcano-style enumeration of shipping strategies (forward,
//!   hash partition, broadcast) and local strategies with a cost model and
//!   cardinality estimates ([`enumerate`], [`cost`], [`cardinality`]);
//! * *interesting properties* propagated towards the sources, extended with
//!   the loop feedback from the iteration input `I` to the iteration output
//!   `O` ([`interesting`]);
//! * the split of an iterative step function into the **dynamic data path**
//!   (re-executed every iteration, cost weighted by the expected number of
//!   iterations) and the **constant data path** (executed once), and the
//!   decision to **cache** the constant-path intermediate result where the
//!   two paths meet ([`Optimizer::optimize_iterative`]).
//!
//! The optimizer consumes the logical [`Plan`] of the `dataflow` crate plus
//! [`Annotations`] (field-copy output contracts) and produces a
//! [`PhysicalPlan`] directly executable by the `dataflow` executor.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cardinality;
pub mod cost;
pub mod enumerate;
pub mod interesting;
pub mod properties;

pub use crate::cardinality::{estimate, Cardinalities};
pub use crate::cost::{Cost, CostModel};
pub use crate::enumerate::{enumerate_best, EnumeratedPlan, PlanningContext};
pub use crate::interesting::{interesting_keys, interesting_sort_keys, EdgeInterests};
pub use crate::properties::{Annotations, FieldCopy, GlobalProperties, Partitioning};

use dataflow::prelude::{OperatorId, PhysicalPlan, Plan, Result};
use std::collections::{HashMap, HashSet};

/// Describes the iterative structure of a step-function plan to the
/// optimizer.
#[derive(Debug, Clone, Default)]
pub struct IterationSpec {
    /// Source operators that carry data changing every iteration (the partial
    /// solution `I`, or the working set `W` for incremental iterations).
    /// Everything downstream of these forms the dynamic data path.
    pub dynamic_sources: Vec<OperatorId>,
    /// `(output_operator, input_source)` pairs connected by the feedback
    /// channel: the records produced at `output_operator` become
    /// `input_source`'s data in the next iteration.  Used for the two-pass
    /// interesting-property propagation.
    pub feedback: Vec<(OperatorId, OperatorId)>,
    /// Expected number of iterations; the dynamic path's cost is weighted by
    /// this factor when comparing plans.
    pub expected_iterations: f64,
}

impl IterationSpec {
    /// A specification with one dynamic source, one feedback edge and the
    /// given expected iteration count.
    pub fn new(dynamic_source: OperatorId, output: OperatorId, expected_iterations: f64) -> Self {
        IterationSpec {
            dynamic_sources: vec![dynamic_source],
            feedback: vec![(output, dynamic_source)],
            expected_iterations,
        }
    }
}

/// The outcome of optimizing a plan.
#[derive(Debug, Clone)]
pub struct OptimizedPlan {
    /// The chosen physical plan, ready for the executor.
    pub physical: PhysicalPlan,
    /// The optimizer's cost estimate.
    pub cost: Cost,
    /// Operators on the dynamic data path (empty for non-iterative plans).
    pub dynamic_path: Vec<OperatorId>,
    /// Edges `(consumer, input slot)` whose input is cached across
    /// iterations because the constant data path meets the dynamic path
    /// there.
    pub cached_edges: Vec<(OperatorId, usize)>,
}

/// Configuration of the [`Optimizer`].
#[derive(Debug, Clone, Copy)]
pub struct OptimizerConfig {
    /// Degree of parallelism plans are generated for.
    pub parallelism: usize,
    /// The cost model.
    pub cost_model: CostModel,
}

impl OptimizerConfig {
    /// Default configuration for the given parallelism.
    pub fn new(parallelism: usize) -> Self {
        OptimizerConfig {
            parallelism,
            cost_model: CostModel::new(parallelism),
        }
    }
}

/// The cost-based optimizer.
#[derive(Debug, Clone)]
pub struct Optimizer {
    config: OptimizerConfig,
}

impl Optimizer {
    /// Creates an optimizer producing plans for `parallelism` worker
    /// partitions.
    pub fn new(parallelism: usize) -> Self {
        Optimizer {
            config: OptimizerConfig::new(parallelism),
        }
    }

    /// Creates an optimizer with an explicit configuration.
    pub fn with_config(config: OptimizerConfig) -> Self {
        Optimizer { config }
    }

    /// The configured parallelism.
    pub fn parallelism(&self) -> usize {
        self.config.parallelism
    }

    /// Optimizes a non-iterative plan.
    pub fn optimize(&self, plan: &Plan, annotations: &Annotations) -> Result<OptimizedPlan> {
        self.optimize_internal(plan, annotations, None)
    }

    /// Optimizes the step function of an iteration.
    ///
    /// Costs of operators and edges on the dynamic data path (everything
    /// downstream of `spec.dynamic_sources`) are weighted by
    /// `spec.expected_iterations`; edges where the constant data path feeds
    /// the dynamic path are marked for caching so repeated executions skip
    /// re-shipping loop-invariant data; and the interesting properties of the
    /// iteration input are fed back to the iteration output before the second
    /// propagation pass.
    pub fn optimize_iterative(
        &self,
        plan: &Plan,
        annotations: &Annotations,
        spec: &IterationSpec,
    ) -> Result<OptimizedPlan> {
        self.optimize_internal(plan, annotations, Some(spec))
    }

    fn optimize_internal(
        &self,
        plan: &Plan,
        annotations: &Annotations,
        spec: Option<&IterationSpec>,
    ) -> Result<OptimizedPlan> {
        if self.config.parallelism == 0 {
            return Err(dataflow::prelude::DataflowError::InvalidPlan(
                "parallelism must be at least 1".into(),
            ));
        }
        let mut dynamic: HashSet<OperatorId> = HashSet::new();
        let mut op_weight: HashMap<OperatorId, f64> = HashMap::new();
        let mut cache_edges: HashSet<(OperatorId, usize)> = HashSet::new();
        let mut feedback: Vec<(OperatorId, OperatorId)> = Vec::new();

        if let Some(spec) = spec {
            for &source in &spec.dynamic_sources {
                for op in plan.downstream_closure(source) {
                    dynamic.insert(op);
                }
            }
            let weight = spec.expected_iterations.max(1.0);
            for &op in &dynamic {
                op_weight.insert(op, weight);
            }
            for op in plan.operators() {
                if !dynamic.contains(&op.id) {
                    continue;
                }
                for (slot, input) in op.inputs.iter().enumerate() {
                    if !dynamic.contains(input) {
                        cache_edges.insert((op.id, slot));
                    }
                }
            }
            feedback = spec.feedback.clone();
        }

        let interesting = interesting_keys(plan, annotations, &feedback);
        let interesting_sorts = interesting_sort_keys(plan, annotations, &feedback);
        let ctx = PlanningContext {
            plan,
            annotations,
            model: self.config.cost_model,
            cards: estimate(plan),
            op_weight,
            cache_edges: cache_edges.clone(),
            interesting,
            interesting_sorts,
        };
        let enumerated = enumerate_best(&ctx, self.config.parallelism)?;

        let mut dynamic_path: Vec<OperatorId> = dynamic.into_iter().collect();
        dynamic_path.sort();
        let mut cached_edges: Vec<(OperatorId, usize)> = cache_edges.into_iter().collect();
        cached_edges.sort();
        Ok(OptimizedPlan {
            physical: enumerated.physical,
            cost: enumerated.cost,
            dynamic_path,
            cached_edges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::prelude::*;
    use std::sync::Arc;

    /// The PageRank step dataflow of Figure 3: vector (pid, r) joined with
    /// matrix (tid, pid, p), grouped by tid.  Returns the plan, the ids of
    /// the relevant operators, and the annotations.
    fn pagerank_step(
        num_pages: usize,
        num_entries: usize,
    ) -> (
        Plan,
        OperatorId,
        OperatorId,
        OperatorId,
        OperatorId,
        OperatorId,
        Annotations,
    ) {
        let mut plan = Plan::new();
        let vector = plan.source(
            "rank-vector",
            (0..num_pages.min(1000) as i64)
                .map(|i| Record::long_double(i, 1.0))
                .collect(),
        );
        plan.set_estimated_records(vector, num_pages);
        let matrix = plan.source(
            "matrix",
            (0..num_entries.min(1000) as i64)
                .map(|i| {
                    Record::triple(
                        i % num_pages.min(1000) as i64,
                        (i * 7) % num_pages.min(1000) as i64,
                        0.1,
                    )
                })
                .collect(),
        );
        plan.set_estimated_records(matrix, num_entries);
        let join = plan.match_join(
            "join-p-A",
            vector,
            matrix,
            vec![0],
            vec![1],
            Arc::new(MatchClosure(
                |l: &Record, r: &Record, out: &mut Collector| {
                    out.collect(Record::long_double(r.long(0), l.double(1) * r.double(2)));
                },
            )),
        );
        plan.set_estimated_records(join, num_entries);
        let reduce = plan.reduce(
            "sum-ranks",
            join,
            vec![0],
            Arc::new(ReduceClosure(
                |k: &[Value], g: &[Record], out: &mut Collector| {
                    let sum: f64 = g.iter().map(|r| r.double(1)).sum();
                    out.collect(Record::long_double(k[0].as_long(), sum));
                },
            )),
        );
        plan.set_estimated_records(reduce, num_pages);
        let sink = plan.sink("next-ranks", reduce);
        let mut ann = Annotations::new();
        ann.add_copy(
            join,
            FieldCopy {
                slot: 1,
                in_field: 0,
                out_field: 0,
            },
        );
        ann.add_copy(
            reduce,
            FieldCopy {
                slot: 0,
                in_field: 0,
                out_field: 0,
            },
        );
        (plan, vector, matrix, join, reduce, sink, ann)
    }

    #[test]
    fn small_rank_vector_prefers_the_broadcast_plan() {
        // Figure 4, left-hand plan: broadcast the small vector, cache the
        // matrix partitioned by tid, group without repartitioning.
        let (plan, vector, _matrix, join, reduce, sink, ann) = pagerank_step(100, 100_000);
        let optimizer = Optimizer::new(8);
        let spec = IterationSpec::new(vector, sink, 20.0);
        let optimized = optimizer.optimize_iterative(&plan, &ann, &spec).unwrap();
        let join_ships = &optimized.physical.choice(join).input_ships;
        assert_eq!(
            join_ships[0],
            ShipStrategy::Broadcast,
            "vector should be broadcast"
        );
        assert_eq!(
            join_ships[1],
            ShipStrategy::PartitionHash(vec![0]),
            "matrix should be partitioned by tid on the constant path"
        );
        assert_eq!(
            optimized.physical.choice(reduce).input_ships[0],
            ShipStrategy::Forward,
            "the aggregation should not need to repartition"
        );
        // The matrix edge is cached because it is the point where the
        // constant path meets the dynamic path.
        assert!(optimized.physical.choice(join).cache_inputs[1]);
        assert!(!optimized.physical.choice(join).cache_inputs[0]);
    }

    #[test]
    fn large_rank_vector_prefers_the_partitioning_plan() {
        // Figure 4, right-hand plan: when the vector is as large as the
        // matrix, broadcasting it to every node is more expensive than
        // partitioning both inputs and repartitioning the join result.
        let (plan, vector, _matrix, join, _reduce, sink, ann) = pagerank_step(2_000_000, 2_200_000);
        let optimizer = Optimizer::new(8);
        let spec = IterationSpec::new(vector, sink, 20.0);
        let optimized = optimizer.optimize_iterative(&plan, &ann, &spec).unwrap();
        let join_ships = &optimized.physical.choice(join).input_ships;
        assert_eq!(
            join_ships[0],
            ShipStrategy::PartitionHash(vec![0]),
            "vector should be hash partitioned"
        );
        assert_ne!(join_ships[0], ShipStrategy::Broadcast);
    }

    #[test]
    fn dynamic_path_covers_everything_downstream_of_the_iteration_input() {
        let (plan, vector, matrix, join, reduce, sink, ann) = pagerank_step(100, 10_000);
        let optimizer = Optimizer::new(4);
        let spec = IterationSpec::new(vector, sink, 20.0);
        let optimized = optimizer.optimize_iterative(&plan, &ann, &spec).unwrap();
        assert!(optimized.dynamic_path.contains(&vector));
        assert!(optimized.dynamic_path.contains(&join));
        assert!(optimized.dynamic_path.contains(&reduce));
        assert!(optimized.dynamic_path.contains(&sink));
        assert!(!optimized.dynamic_path.contains(&matrix));
        assert_eq!(optimized.cached_edges, vec![(join, 1)]);
    }

    #[test]
    fn optimized_iterative_plan_executes_and_matches_default_plan_output() {
        let (plan, vector, _matrix, _join, _reduce, sink, ann) = pagerank_step(50, 500);
        let optimizer = Optimizer::new(4);
        let spec = IterationSpec::new(vector, sink, 10.0);
        let optimized = optimizer.optimize_iterative(&plan, &ann, &spec).unwrap();
        let default = default_physical_plan(&plan, 4).unwrap();
        let exec = Executor::new();
        let mut a = exec
            .execute(&optimized.physical)
            .unwrap()
            .sink("next-ranks")
            .unwrap();
        let mut b = exec.execute(&default).unwrap().sink("next-ranks").unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn optimization_is_deterministic() {
        let (plan, vector, _matrix, _join, _reduce, sink, ann) = pagerank_step(1_000, 50_000);
        let optimizer = Optimizer::new(8);
        let spec = IterationSpec::new(vector, sink, 20.0);
        let optimized = optimizer.optimize_iterative(&plan, &ann, &spec).unwrap();
        let again = optimizer.optimize_iterative(&plan, &ann, &spec).unwrap();
        assert!(optimized.cost.total().is_finite());
        assert!(optimized.cost.total() > 0.0);
        assert_eq!(optimized.cost.total(), again.cost.total());
        assert_eq!(optimized.physical.explain(), again.physical.explain());
    }

    #[test]
    fn non_iterative_optimization_marks_no_cache_edges() {
        let (plan, _vector, _matrix, join, _reduce, _sink, ann) = pagerank_step(100, 1_000);
        let optimizer = Optimizer::new(4);
        let optimized = optimizer.optimize(&plan, &ann).unwrap();
        assert!(optimized.cached_edges.is_empty());
        assert!(optimized.dynamic_path.is_empty());
        assert!(!optimized
            .physical
            .choice(join)
            .cache_inputs
            .iter()
            .any(|&c| c));
    }

    #[test]
    fn broadcast_plan_beats_partition_plan_on_estimated_cost_for_small_vectors() {
        // The broadcast decision should flip as the vector grows relative to
        // the matrix (Figure 4's two regimes).
        let optimizer = Optimizer::new(8);
        let mut last_broadcast = None;
        let mut saw_broadcast = false;
        let mut saw_partition = false;
        for pages in [100usize, 1_000, 10_000, 1_000_000, 4_000_000] {
            let (plan, vector, _m, join, _r, sink, ann) = pagerank_step(pages, 4_000_000);
            let spec = IterationSpec::new(vector, sink, 20.0);
            let optimized = optimizer.optimize_iterative(&plan, &ann, &spec).unwrap();
            let broadcast =
                optimized.physical.choice(join).input_ships[0] == ShipStrategy::Broadcast;
            if broadcast {
                saw_broadcast = true;
                // Once the vector is large enough to switch to partitioning we
                // should not switch back to broadcast for even larger vectors.
                assert!(
                    last_broadcast != Some(false),
                    "crossover should be monotone"
                );
            } else {
                saw_partition = true;
            }
            last_broadcast = Some(broadcast);
        }
        assert!(saw_broadcast, "small vectors should be broadcast");
        assert!(saw_partition, "huge vectors should be partitioned");
    }
}
