//! Cardinality estimation.
//!
//! The optimizer needs to know roughly how many records each operator
//! produces in order to cost shipping strategies.  Sources know their size
//! exactly; for other operators the estimate is either taken from the
//! cardinality hint on the logical plan (`Plan::set_estimated_records`, the
//! mechanism algorithm authors use when they know e.g. that the PageRank join
//! emits one record per matrix entry) or derived from simple textbook rules.

use dataflow::plan::{OperatorKind, Plan};
use dataflow::prelude::OperatorId;
use std::collections::HashMap;

/// Estimated number of records produced by each operator.
#[derive(Debug, Clone, Default)]
pub struct Cardinalities {
    estimates: HashMap<OperatorId, f64>,
}

impl Cardinalities {
    /// The estimate for `op` (0.0 if unknown, which only happens for plans
    /// that were not passed through [`estimate`]).
    pub fn of(&self, op: OperatorId) -> f64 {
        self.estimates.get(&op).copied().unwrap_or(0.0)
    }

    /// Overrides the estimate of a single operator.
    pub fn set(&mut self, op: OperatorId, records: f64) {
        self.estimates.insert(op, records);
    }
}

/// Fraction of input records assumed to survive a grouping (distinct keys per
/// record) when no hint is present.
const DEFAULT_GROUPING_RATIO: f64 = 0.5;

/// Estimates output cardinalities for every operator of `plan` in topological
/// order.
pub fn estimate(plan: &Plan) -> Cardinalities {
    let mut cards = Cardinalities::default();
    let order = match plan.topological_order() {
        Ok(order) => order,
        Err(_) => return cards,
    };
    for id in order {
        let op = plan.operator(id);
        if let Some(hint) = op.estimated_records {
            cards.set(id, hint as f64);
            continue;
        }
        let inputs: Vec<f64> = op.inputs.iter().map(|&i| cards.of(i)).collect();
        let estimate = match &op.kind {
            OperatorKind::Source { data } => data.len() as f64,
            OperatorKind::Map => inputs[0],
            OperatorKind::Reduce { .. } => inputs[0] * DEFAULT_GROUPING_RATIO,
            // An equi-join on a key that is unique on one side emits about as
            // many records as the larger input; without further information
            // this is the standard heuristic.
            OperatorKind::Match { .. } => inputs[0].max(inputs[1]),
            OperatorKind::CoGroup { .. } => inputs[0].max(inputs[1]) * DEFAULT_GROUPING_RATIO,
            OperatorKind::Cross => inputs[0] * inputs[1],
            OperatorKind::Union => inputs.iter().sum(),
            OperatorKind::Sink { .. } => inputs[0],
        };
        cards.set(id, estimate);
    }
    cards
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::prelude::*;
    use std::sync::Arc;

    #[test]
    fn sources_use_exact_sizes_and_maps_pass_through() {
        let mut plan = Plan::new();
        let src = plan.source("s", (0..10).map(|i| Record::pair(i, i)).collect());
        let map = plan.map(
            "m",
            src,
            Arc::new(MapClosure(|r: &Record, out: &mut Collector| {
                out.collect(r.clone())
            })),
        );
        plan.sink("out", map);
        let cards = estimate(&plan);
        assert_eq!(cards.of(src), 10.0);
        assert_eq!(cards.of(map), 10.0);
    }

    #[test]
    fn hints_override_heuristics() {
        let mut plan = Plan::new();
        let a = plan.source("a", (0..100).map(|i| Record::pair(i, i)).collect());
        let b = plan.source("b", (0..10).map(|i| Record::pair(i, i)).collect());
        let join = plan.match_join(
            "j",
            a,
            b,
            vec![0],
            vec![0],
            Arc::new(MatchClosure(
                |l: &Record, _r: &Record, out: &mut Collector| out.collect(l.clone()),
            )),
        );
        plan.set_estimated_records(join, 42);
        plan.sink("out", join);
        let cards = estimate(&plan);
        assert_eq!(cards.of(join), 42.0);
    }

    #[test]
    fn join_and_cross_heuristics() {
        let mut plan = Plan::new();
        let a = plan.source("a", (0..100).map(|i| Record::pair(i, i)).collect());
        let b = plan.source("b", (0..10).map(|i| Record::pair(i, i)).collect());
        let join = plan.match_join(
            "j",
            a,
            b,
            vec![0],
            vec![0],
            Arc::new(MatchClosure(
                |l: &Record, _r: &Record, out: &mut Collector| out.collect(l.clone()),
            )),
        );
        let cross = plan.cross(
            "x",
            join,
            b,
            Arc::new(CrossClosure(
                |l: &Record, _r: &Record, out: &mut Collector| out.collect(l.clone()),
            )),
        );
        plan.sink("out", cross);
        let cards = estimate(&plan);
        assert_eq!(cards.of(join), 100.0);
        assert_eq!(cards.of(cross), 1000.0);
    }

    #[test]
    fn unknown_operator_reports_zero() {
        let cards = Cardinalities::default();
        assert_eq!(cards.of(OperatorId(7)), 0.0);
    }
}
