//! Interesting-property propagation.
//!
//! Following the Volcano approach, operators announce which physical
//! properties (here: hash partitionings) would help them, and those
//! *interesting properties* are propagated down towards the sources so the
//! enumerator also considers establishing a property early — possibly on the
//! cheap constant data path — even though the operator consuming that edge
//! does not itself require it.
//!
//! For iterative plans the paper extends this with a feedback step
//! (Section 4.3): properties that are interesting at the iteration input `I`
//! are also interesting at the operator producing the iteration output `O`,
//! because `O` becomes the next iteration's `I`.  This is implemented as the
//! two top-down traversals described in the paper: the first pass collects
//! IPs, the IPs arriving at `I` are fed back into the requirements of `O`,
//! and the second pass propagates them through the dataflow again.

use crate::properties::Annotations;
use dataflow::plan::{OperatorKind, Plan};
use dataflow::prelude::{KeyFields, OperatorId};
use std::collections::HashMap;

/// Interesting hash-partitioning keys per (consumer operator, input slot).
pub type EdgeInterests = HashMap<(OperatorId, usize), Vec<KeyFields>>;

/// The partitioning requirements an operator itself places on one of its
/// input edges (its "generated" interesting properties).
fn own_requirement(kind: &OperatorKind, slot: usize) -> Option<KeyFields> {
    match kind {
        OperatorKind::Reduce { key } if slot == 0 => Some(key.clone()),
        OperatorKind::Match {
            left_key,
            right_key,
        }
        | OperatorKind::CoGroup {
            left_key,
            right_key,
            ..
        } => {
            if slot == 0 {
                Some(left_key.clone())
            } else {
                Some(right_key.clone())
            }
        }
        _ => None,
    }
}

/// The keys on which a **sorted** input would let the operator run a
/// sort-based local strategy without re-sorting: the CoGroup contract always
/// sort-merges, and a Reduce can group a sorted run with a single scan
/// (merge-group).  A `Match` prefers hash joins, so its keys do not
/// *generate* sort interest — but merge joins are still picked up when both
/// inputs happen to arrive sorted (see the enumerator).
fn own_sort_requirement(kind: &OperatorKind, slot: usize) -> Option<KeyFields> {
    match kind {
        OperatorKind::Reduce { key } if slot == 0 => Some(key.clone()),
        OperatorKind::CoGroup {
            left_key,
            right_key,
            ..
        } => {
            if slot == 0 {
                Some(left_key.clone())
            } else {
                Some(right_key.clone())
            }
        }
        _ => None,
    }
}

/// Computes the interesting partitioning keys of every edge.
///
/// `feedback` contains `(output_operator, input_source)` pairs for iterative
/// plans: the interesting properties gathered at `input_source`'s outgoing
/// edges are fed back as requirements of `output_operator`'s input edges
/// before a second propagation pass (pass-through for non-iterative plans
/// when `feedback` is empty).
pub fn interesting_keys(
    plan: &Plan,
    annotations: &Annotations,
    feedback: &[(OperatorId, OperatorId)],
) -> EdgeInterests {
    interesting_with(plan, annotations, feedback, &own_requirement)
}

/// Computes the interesting **sort** keys of every edge: the keys on which a
/// range-partitioned, sorted input (a [`crate::properties::GlobalProperties`]
/// with a matching order) would save a downstream sort.  Propagated exactly
/// like partitioning interests, including the iterative loop feedback, so an
/// early range partitioning on the constant data path — whose sort is paid
/// once — can serve sort requirements inside the loop on every superstep.
pub fn interesting_sort_keys(
    plan: &Plan,
    annotations: &Annotations,
    feedback: &[(OperatorId, OperatorId)],
) -> EdgeInterests {
    interesting_with(plan, annotations, feedback, &own_sort_requirement)
}

/// Shared two-pass propagation: a first pass with `own` requirements, the
/// loop feedback from iteration inputs to iteration outputs, and a second
/// pass with the fed-back requirements injected.
fn interesting_with(
    plan: &Plan,
    annotations: &Annotations,
    feedback: &[(OperatorId, OperatorId)],
    own: &dyn Fn(&OperatorKind, usize) -> Option<KeyFields>,
) -> EdgeInterests {
    let first = propagate(plan, annotations, &HashMap::new(), own);
    if feedback.is_empty() {
        return first;
    }
    // Feed the IPs that arrived at each iteration input back into the
    // requirements of the corresponding output operator.
    let mut extra: HashMap<OperatorId, Vec<KeyFields>> = HashMap::new();
    for &(output_op, input_source) in feedback {
        let mut fed: Vec<KeyFields> = Vec::new();
        for ((consumer, slot), keys) in &first {
            let op = plan.operator(*consumer);
            if op.inputs.get(*slot) == Some(&input_source) {
                fed.extend(keys.iter().cloned());
            }
        }
        extra.entry(output_op).or_default().extend(fed);
    }
    propagate(plan, annotations, &extra, own)
}

/// One top-down (sink-to-source) propagation pass.  `extra_requirements`
/// injects additional interesting keys at the *inputs* of the given
/// operators (used for the loop feedback); `own` selects the per-operator
/// generated requirements (partitioning or sort interest).
fn propagate(
    plan: &Plan,
    annotations: &Annotations,
    extra_requirements: &HashMap<OperatorId, Vec<KeyFields>>,
    own: &dyn Fn(&OperatorKind, usize) -> Option<KeyFields>,
) -> EdgeInterests {
    let order = match plan.topological_order() {
        Ok(order) => order,
        Err(_) => return EdgeInterests::new(),
    };
    // Interesting keys of each operator's *output*, accumulated while walking
    // from the sinks towards the sources.
    let mut output_interests: HashMap<OperatorId, Vec<KeyFields>> = HashMap::new();
    let mut edges = EdgeInterests::new();

    for &id in order.iter().rev() {
        let op = plan.operator(id);
        let inherited = output_interests.get(&id).cloned().unwrap_or_default();
        for (slot, &input) in op.inputs.iter().enumerate() {
            let mut keys: Vec<KeyFields> = Vec::new();
            if let Some(generated) = own(&op.kind, slot) {
                keys.push(generated);
            }
            if let Some(extra) = extra_requirements.get(&id) {
                keys.extend(extra.iter().cloned());
            }
            // Properties interesting on our output are interesting on this
            // input if the operator preserves the key fields from this slot.
            for key in &inherited {
                if let Some(mapped) = annotations.map_key_backward(id, slot, key) {
                    keys.push(mapped);
                }
            }
            keys.sort();
            keys.dedup();
            if !keys.is_empty() {
                edges.insert((id, slot), keys.clone());
            }
            let out = output_interests.entry(input).or_default();
            out.extend(keys);
            out.sort();
            out.dedup();
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::FieldCopy;
    use dataflow::prelude::*;
    use std::sync::Arc;

    /// Builds the PageRank step dataflow of the paper's Figure 3/4:
    /// vector (pid, r) ⋈ matrix (tid, pid, p) → reduce on tid → sink.
    fn pagerank_plan() -> (
        Plan,
        OperatorId,
        OperatorId,
        OperatorId,
        OperatorId,
        Annotations,
    ) {
        let mut plan = Plan::new();
        let vector = plan.source("rank-vector", vec![Record::long_double(0, 1.0)]);
        let matrix = plan.source("matrix", vec![Record::triple(0, 0, 1.0)]);
        let join = plan.match_join(
            "join-p-A",
            vector,
            matrix,
            vec![0],
            vec![1],
            Arc::new(MatchClosure(
                |_l: &Record, r: &Record, out: &mut Collector| {
                    out.collect(Record::long_double(r.long(0), 0.0))
                },
            )),
        );
        let reduce = plan.reduce(
            "sum-ranks",
            join,
            vec![0],
            Arc::new(ReduceClosure(
                |k: &[Value], _g: &[Record], out: &mut Collector| {
                    out.collect(Record::long_double(k[0].as_long(), 0.0))
                },
            )),
        );
        let _sink = plan.sink("next-ranks", reduce);
        let mut ann = Annotations::new();
        // The join copies the matrix's tid (field 0 of slot 1) to output field 0.
        ann.add_copy(
            join,
            FieldCopy {
                slot: 1,
                in_field: 0,
                out_field: 0,
            },
        );
        // The reduce keeps its grouping key in field 0.
        ann.add_copy(
            reduce,
            FieldCopy {
                slot: 0,
                in_field: 0,
                out_field: 0,
            },
        );
        (plan, vector, matrix, join, reduce, ann)
    }

    #[test]
    fn joins_and_reduces_generate_their_key_requirements() {
        let (plan, _v, _m, join, reduce, ann) = pagerank_plan();
        let interests = interesting_keys(&plan, &ann, &[]);
        assert!(interests[&(join, 0)].contains(&vec![0]));
        assert!(interests[&(join, 1)].contains(&vec![1]));
        assert!(interests[&(reduce, 0)].contains(&vec![0]));
    }

    #[test]
    fn reduce_interest_is_pushed_down_to_the_matrix_edge() {
        // The key insight behind the left-hand plan of Figure 4: because the
        // join preserves the matrix's tid field, the Reduce's partitioning
        // interest (on tid) becomes interesting on the matrix input edge of
        // the join — where it can be established once, on the constant path.
        let (plan, _v, _m, join, _reduce, ann) = pagerank_plan();
        let interests = interesting_keys(&plan, &ann, &[]);
        let matrix_edge = &interests[&(join, 1)];
        assert!(
            matrix_edge.contains(&vec![0]),
            "tid partitioning should be interesting: {matrix_edge:?}"
        );
    }

    #[test]
    fn without_field_copy_annotations_nothing_is_pushed_through() {
        let (plan, _v, _m, join, _reduce, _) = pagerank_plan();
        let empty = Annotations::new();
        let interests = interesting_keys(&plan, &empty, &[]);
        let matrix_edge = &interests[&(join, 1)];
        assert_eq!(matrix_edge, &vec![vec![1]]);
    }

    #[test]
    fn sort_interest_comes_from_sort_based_contracts_only() {
        let (plan, _v, _m, join, reduce, ann) = pagerank_plan();
        let sorts = interesting_sort_keys(&plan, &ann, &[]);
        // The Reduce would merge-group a sorted input.
        assert!(sorts[&(reduce, 0)].contains(&vec![0]));
        // The Match's own keys generate no sort interest (hash join), but the
        // Reduce's interest maps back through the join's field copy onto the
        // matrix edge — where a range partitioning could be established once
        // on the constant path.
        assert!(sorts
            .get(&(join, 1))
            .map(|keys| keys.contains(&vec![0]))
            .unwrap_or(false));
        assert!(!sorts
            .get(&(join, 1))
            .map(|keys| keys.contains(&vec![1]))
            .unwrap_or(false));
        assert!(!sorts.contains_key(&(join, 0)));
    }

    #[test]
    fn loop_feedback_adds_input_interests_to_the_output_operator() {
        let (plan, vector, _m, _join, _reduce, ann) = pagerank_plan();
        let sink = plan.sink_by_name("next-ranks").unwrap();
        let interests = interesting_keys(&plan, &ann, &[(sink, vector)]);
        // The join requires the rank vector partitioned on pid (field 0); via
        // the feedback O -> I this becomes interesting at the sink's input.
        assert!(interests.contains_key(&(sink, 0)));
        assert!(interests[&(sink, 0)].contains(&vec![0]));
    }
}
