//! Plan enumeration.
//!
//! The enumerator walks the logical plan in topological order and maintains,
//! per operator, a set of candidate physical sub-plans (shipping strategy per
//! input edge, local strategy, resulting global properties, accumulated
//! cost).  Candidates whose cost is dominated by another candidate with the
//! same output properties are pruned, following the classical Volcano-style
//! dynamic programming scheme the paper assumes.  Shipping options per edge
//! include, besides the operator's own requirement, the *interesting*
//! partitionings propagated from downstream operators — which is what allows
//! the enumerator to discover plans that establish a partitioning early on
//! the constant data path (the broadcast PageRank plan of Figure 4).

use crate::cardinality::Cardinalities;
use crate::cost::{Cost, CostModel};
use crate::interesting::EdgeInterests;
use crate::properties::{Annotations, GlobalProperties, Partitioning};
use dataflow::plan::{Operator, OperatorKind, Plan};
use dataflow::prelude::{
    DataflowError, LocalStrategy, OperatorId, PhysicalChoice, PhysicalPlan, Result, ShipStrategy,
};
use std::collections::{HashMap, HashSet};

/// Maximum number of candidates kept per operator after pruning.
const MAX_CANDIDATES_PER_OPERATOR: usize = 12;

/// Everything the enumerator needs to know about the planning problem.
pub struct PlanningContext<'a> {
    /// The logical plan being optimized.
    pub plan: &'a Plan,
    /// Field-copy annotations (output contracts).
    pub annotations: &'a Annotations,
    /// The cost model.
    pub model: CostModel,
    /// Cardinality estimates per operator.
    pub cards: Cardinalities,
    /// Per-operator cost weight; operators on the dynamic data path of an
    /// iteration carry the expected iteration count, all others 1.0.
    pub op_weight: HashMap<OperatorId, f64>,
    /// Edges (consumer, slot) whose exchanged input is cached across
    /// iterations; their shipping cost is charged only once.
    pub cache_edges: HashSet<(OperatorId, usize)>,
    /// Interesting partitioning keys per edge.
    pub interesting: EdgeInterests,
    /// Interesting **sort** keys per edge (see
    /// [`crate::interesting::interesting_sort_keys`]): where a
    /// range-partitioned, sorted input would save a downstream sort, the
    /// enumerator also considers `PartitionRange` shipping.
    pub interesting_sorts: EdgeInterests,
}

impl<'a> PlanningContext<'a> {
    fn weight_of(&self, op: OperatorId) -> f64 {
        self.op_weight.get(&op).copied().unwrap_or(1.0)
    }

    fn edge_weight(&self, consumer: OperatorId, slot: usize) -> f64 {
        if self.cache_edges.contains(&(consumer, slot)) {
            1.0
        } else {
            self.weight_of(consumer)
        }
    }
}

/// One candidate physical sub-plan rooted at some operator.
#[derive(Debug, Clone)]
struct Candidate {
    /// Physical choices for every operator in the sub-plan.
    choices: HashMap<OperatorId, PhysicalChoice>,
    /// Global properties of the operator's output under these choices.
    props: GlobalProperties,
    /// Accumulated (weighted) cost of the sub-plan.
    cost: Cost,
}

/// The result of the enumeration: a full physical plan and its estimated cost.
#[derive(Debug, Clone)]
pub struct EnumeratedPlan {
    /// The chosen physical plan.
    pub physical: PhysicalPlan,
    /// The optimizer's cost estimate for it.
    pub cost: Cost,
}

/// Enumerates physical plans for `ctx` and returns the cheapest one.
pub fn enumerate_best(ctx: &PlanningContext<'_>, parallelism: usize) -> Result<EnumeratedPlan> {
    let order = ctx.plan.validate()?;
    let mut candidates: HashMap<OperatorId, Vec<Candidate>> = HashMap::new();

    for id in order {
        let op = ctx.plan.operator(id);
        let new_candidates = match op.kind {
            OperatorKind::Source { .. } => vec![Candidate {
                choices: HashMap::from([(id, PhysicalChoice::forward(0))]),
                props: GlobalProperties::any(),
                cost: Cost::zero(),
            }],
            _ => enumerate_operator(ctx, op, &candidates, parallelism),
        };
        if new_candidates.is_empty() {
            return Err(DataflowError::InvalidPlan(format!(
                "no valid physical alternative found for operator '{}'",
                op.name
            )));
        }
        candidates.insert(id, prune(new_candidates));
    }

    // Combine the cheapest consistent candidates of all sinks.
    let sinks = ctx.plan.sinks();
    let mut combined: Option<Candidate> = None;
    for sink in sinks {
        let best = candidates[&sink]
            .iter()
            .min_by(|a, b| a.cost.total().total_cmp(&b.cost.total()))
            .expect("pruning never leaves an empty candidate set");
        combined = Some(match combined {
            None => best.clone(),
            Some(mut acc) => {
                for (op, choice) in &best.choices {
                    acc.choices.entry(*op).or_insert_with(|| choice.clone());
                }
                acc.cost = acc.cost.add(best.cost);
                acc
            }
        });
    }
    let combined =
        combined.ok_or_else(|| DataflowError::InvalidPlan("plan has no sinks".to_owned()))?;

    // Assemble the physical plan; operators not reachable from any sink get
    // defaults (they produce data nobody consumes).
    let mut choices = combined.choices;
    for op in ctx.plan.operators() {
        choices
            .entry(op.id)
            .or_insert_with(|| PhysicalChoice::forward(op.inputs.len()));
    }
    let mut physical = PhysicalPlan {
        plan: ctx.plan.clone(),
        choices,
        parallelism,
    };
    for &(consumer, slot) in &ctx.cache_edges {
        physical.cache_input(consumer, slot);
    }
    Ok(EnumeratedPlan {
        physical,
        cost: combined.cost,
    })
}

/// Enumerates candidates for one (non-source) operator given the candidate
/// sets of its inputs.
fn enumerate_operator(
    ctx: &PlanningContext<'_>,
    op: &Operator,
    candidates: &HashMap<OperatorId, Vec<Candidate>>,
    parallelism: usize,
) -> Vec<Candidate> {
    let slots = op.inputs.len();
    let input_candidates: Vec<&Vec<Candidate>> =
        op.inputs.iter().map(|input| &candidates[input]).collect();
    let ship_options: Vec<Vec<ShipStrategy>> = (0..slots)
        .map(|slot| ship_options_for(ctx, op, slot))
        .collect();

    let mut result = Vec::new();
    // Cartesian product over input candidates and ship options per slot.
    let mut selector = vec![0usize; slots * 2];
    loop {
        // Decode the selector into per-slot (candidate index, ship index).
        let mut input_choice = Vec::with_capacity(slots);
        let mut valid_selector = true;
        for slot in 0..slots {
            let cand_idx = selector[slot * 2];
            let ship_idx = selector[slot * 2 + 1];
            if cand_idx >= input_candidates[slot].len() || ship_idx >= ship_options[slot].len() {
                valid_selector = false;
                break;
            }
            input_choice.push((
                &input_candidates[slot][cand_idx],
                &ship_options[slot][ship_idx],
            ));
        }
        if valid_selector {
            if let Some(candidate) = build_candidate(ctx, op, &input_choice, parallelism) {
                result.push(candidate);
            }
        }
        // Advance the mixed-radix selector.
        let mut pos = 0;
        loop {
            if pos >= selector.len() {
                return result;
            }
            let radix = if pos % 2 == 0 {
                input_candidates[pos / 2].len()
            } else {
                ship_options[pos / 2].len()
            };
            selector[pos] += 1;
            if selector[pos] < radix {
                break;
            }
            selector[pos] = 0;
            pos += 1;
        }
        if slots == 0 {
            return result;
        }
    }
}

/// The shipping strategies worth considering for one input edge.
fn ship_options_for(ctx: &PlanningContext<'_>, op: &Operator, slot: usize) -> Vec<ShipStrategy> {
    let mut options = vec![ShipStrategy::Forward];
    let add_hash = |key: &Vec<usize>, options: &mut Vec<ShipStrategy>| {
        let candidate = ShipStrategy::PartitionHash(key.clone());
        if !options.contains(&candidate) {
            options.push(candidate);
        }
    };
    let add_range = |key: &Vec<usize>, options: &mut Vec<ShipStrategy>| {
        let candidate = ShipStrategy::PartitionRange(key.clone());
        if !options.contains(&candidate) {
            options.push(candidate);
        }
    };
    match &op.kind {
        OperatorKind::Reduce { key } => {
            add_hash(key, &mut options);
            // A ranged input lets the Reduce merge-group without a sort.
            add_range(key, &mut options);
        }
        OperatorKind::Match {
            left_key,
            right_key,
        }
        | OperatorKind::CoGroup {
            left_key,
            right_key,
            ..
        } => {
            let key = if slot == 0 { left_key } else { right_key };
            add_hash(key, &mut options);
            if matches!(op.kind, OperatorKind::CoGroup { .. }) {
                // The CoGroup contract always sort-merges, so delivering its
                // inputs range-partitioned (already sorted) removes the
                // local sorts entirely.
                add_range(key, &mut options);
            }
            // Broadcasting is only considered for the smaller join side;
            // replicating the larger input to every instance would also have
            // to be held resident there, which the paper's setting (and any
            // real deployment) rules out for the dominant data set.
            let this_card = ctx.cards.of(op.inputs[slot]);
            let other_card = ctx.cards.of(op.inputs[1 - slot]);
            if this_card < other_card {
                options.push(ShipStrategy::Broadcast);
            }
        }
        OperatorKind::Cross => options.push(ShipStrategy::Broadcast),
        _ => {}
    }
    if let Some(interests) = ctx.interesting.get(&(op.id, slot)) {
        for key in interests {
            add_hash(key, &mut options);
        }
    }
    if let Some(interests) = ctx.interesting_sorts.get(&(op.id, slot)) {
        for key in interests {
            add_range(key, &mut options);
        }
    }
    options
}

/// Builds (and costs) one candidate for `op` from chosen input candidates and
/// shipping strategies; returns `None` if the combination is invalid.
fn build_candidate(
    ctx: &PlanningContext<'_>,
    op: &Operator,
    inputs: &[(&Candidate, &ShipStrategy)],
    parallelism: usize,
) -> Option<Candidate> {
    // Merge the input candidates' choices, rejecting inconsistent overlaps
    // (the same upstream operator planned differently on two branches).
    let mut choices: HashMap<OperatorId, PhysicalChoice> = HashMap::new();
    let mut cost = Cost::zero();
    for (candidate, _) in inputs {
        for (id, choice) in &candidate.choices {
            match choices.get(id) {
                None => {
                    choices.insert(*id, choice.clone());
                }
                Some(existing) => {
                    if existing.input_ships != choice.input_ships || existing.local != choice.local
                    {
                        return None;
                    }
                }
            }
        }
    }
    // Sum the input sub-plan costs exactly once per distinct branch.  (For
    // branches sharing operators the shared cost is counted once per branch;
    // this over-approximation is identical across alternatives and therefore
    // does not change the ranking.)
    let mut seen_roots: HashSet<*const Candidate> = HashSet::new();
    for (candidate, _) in inputs {
        let ptr = *candidate as *const Candidate;
        if seen_roots.insert(ptr) {
            cost = cost.add(candidate.cost);
        }
    }

    // Properties after shipping, and shipping cost.
    let mut post_ship: Vec<GlobalProperties> = Vec::with_capacity(inputs.len());
    let mut input_cards: Vec<f64> = Vec::with_capacity(inputs.len());
    for (slot, (candidate, ship)) in inputs.iter().enumerate() {
        let producer = op.inputs[slot];
        let records = ctx.cards.of(producer);
        input_cards.push(records);
        let weight = ctx.edge_weight(op.id, slot);
        cost = cost.add(ctx.model.ship_cost(ship, records).scale(weight));
        let props = match ship {
            ShipStrategy::Forward => candidate.props.clone(),
            ShipStrategy::PartitionHash(key) => GlobalProperties::hashed(key.clone()),
            // A range exchange delivers sorted partitions: partitioning and
            // global order in one shipping strategy.
            ShipStrategy::PartitionRange(key) => GlobalProperties::ranged(key.clone()),
            ShipStrategy::Broadcast => GlobalProperties::replicated(),
        };
        post_ship.push(props);
    }

    let ships: Vec<&ShipStrategy> = inputs.iter().map(|(_, ship)| *ship).collect();
    if !is_valid(op, &post_ship, &ships, parallelism) {
        return None;
    }

    // Which inputs arrive sorted on the operator's own key: those are the
    // sorts the plan no longer performs (and no longer pays for).
    let sorted_inputs = sorted_on_own_keys(op, &post_ship);
    let local = choose_local_strategy(ctx, op, &post_ship, &input_cards, &sorted_inputs);
    cost = cost.add(
        ctx.model
            .local_cost_sorted(local, &input_cards, &sorted_inputs)
            .scale(ctx.weight_of(op.id)),
    );

    let props = output_properties(ctx.annotations, op, &post_ship);
    choices.insert(
        op.id,
        PhysicalChoice {
            input_ships: inputs.iter().map(|(_, ship)| (*ship).clone()).collect(),
            local,
            cache_inputs: vec![false; inputs.len()],
        },
    );
    Some(Candidate {
        choices,
        props,
        cost,
    })
}

/// Checks that the post-shipping properties make the operator's parallel
/// execution correct.
fn is_valid(
    op: &Operator,
    post_ship: &[GlobalProperties],
    ships: &[&ShipStrategy],
    parallelism: usize,
) -> bool {
    if parallelism <= 1 {
        return true;
    }
    match &op.kind {
        // A Reduce needs equal keys collocated; hash and range partitioning
        // both provide that (collocation is a within-one-histogram property,
        // so it survives Forward edges under either scheme).
        OperatorKind::Reduce { key } => post_ship[0].partitioning.collocates(key),
        OperatorKind::Match {
            left_key,
            right_key,
        }
        | OperatorKind::CoGroup {
            left_key,
            right_key,
            ..
        } => {
            // Range co-partitioning needs both sides to share one splitter
            // histogram, which the executor only guarantees when both edges
            // are range-*shipped at this operator* (it builds one bounds
            // object per consumer).  A `Range` property inherited through a
            // Forward edge comes from a *different* histogram and would
            // silently mis-join — so a range ship at a join is only valid
            // paired with another range ship, mirroring the executor's own
            // rejection of range/forward and range/hash mixes.
            let any_range_ship = ships
                .iter()
                .any(|s| matches!(s, ShipStrategy::PartitionRange(_)));
            if any_range_ship {
                return matches!(ships[0],
                        ShipStrategy::PartitionRange(k) if k.as_slice() == left_key.as_slice())
                    && matches!(ships[1],
                        ShipStrategy::PartitionRange(k) if k.as_slice() == right_key.as_slice());
            }
            // Hash routing is one global function, so hash co-partitioning
            // can be read off the properties regardless of where each side's
            // partitioning was established.
            let hash_co = post_ship[0].partitioning.satisfies_hash(left_key)
                && post_ship[1].partitioning.satisfies_hash(right_key);
            hash_co
                || post_ship[0].partitioning.is_replicated()
                || post_ship[1].partitioning.is_replicated()
        }
        OperatorKind::Cross => {
            post_ship[0].partitioning.is_replicated() || post_ship[1].partitioning.is_replicated()
        }
        _ => true,
    }
}

/// Which inputs arrive globally sorted on the operator's own key for that
/// slot (join key / grouping key) — the inputs whose sort the plan skips.
fn sorted_on_own_keys(op: &Operator, post_ship: &[GlobalProperties]) -> Vec<bool> {
    match &op.kind {
        OperatorKind::Reduce { key } => vec![post_ship[0].sorted_on(key)],
        OperatorKind::Match {
            left_key,
            right_key,
        }
        | OperatorKind::CoGroup {
            left_key,
            right_key,
            ..
        } => vec![
            post_ship[0].sorted_on(left_key),
            post_ship[1].sorted_on(right_key),
        ],
        _ => vec![false; post_ship.len()],
    }
}

/// Rule-based local strategy choice (costed, but not enumerated — the paper's
/// experiments hinge on the shipping choices, not the join flavour).  Inputs
/// that arrive sorted on the operator's key flip the choice to the merge
/// variants, which then run without a sort.
fn choose_local_strategy(
    ctx: &PlanningContext<'_>,
    op: &Operator,
    post_ship: &[GlobalProperties],
    input_cards: &[f64],
    sorted_inputs: &[bool],
) -> LocalStrategy {
    match &op.kind {
        OperatorKind::Match { .. } => {
            if sorted_inputs.iter().all(|&s| s) {
                // Both sides pre-sorted on the join key: a merge join needs
                // only a linear scan.
                LocalStrategy::SortMergeJoin
            } else {
                ctx.model.choose_join_strategy(
                    input_cards[0],
                    input_cards[1],
                    post_ship[0].partitioning.is_replicated(),
                    post_ship[1].partitioning.is_replicated(),
                )
            }
        }
        OperatorKind::CoGroup { .. } => LocalStrategy::SortMergeJoin,
        OperatorKind::Reduce { .. } => {
            if sorted_inputs.first().copied().unwrap_or(false) {
                // Merge-group: one scan over the sorted run.
                LocalStrategy::SortGroup
            } else {
                LocalStrategy::HashGroup
            }
        }
        OperatorKind::Cross => LocalStrategy::NestedLoop,
        _ => LocalStrategy::None,
    }
}

/// Global properties of the operator's output under the given input
/// properties, derived from the field-copy annotations.
///
/// Partitioning survives an operator when the key fields are copied —
/// collocation (hash or range) is a property of where records *live*, which
/// local processing does not change.  A delivered **order never survives**
/// onto an operator's output: the executor only advertises sortedness on the
/// edge a range exchange (or range-cached edge) feeds directly into a local
/// strategy, not on materialized operator outputs, so claiming it here would
/// credit downstream plans with a sort the runtime still performs.
/// (Advertising order on operator outputs is the out-of-core/spilling
/// follow-on's job, together with output contracts strong enough to prove
/// the UDF kept the emission order.)
fn output_properties(
    annotations: &Annotations,
    op: &Operator,
    post_ship: &[GlobalProperties],
) -> GlobalProperties {
    // Maps the partitioning of input `slot` into the output field space; a
    // key that is not fully copied drops the property.
    let preserve_from = |slot: usize| -> Option<GlobalProperties> {
        let partitioning = match &post_ship[slot].partitioning {
            Partitioning::Hash(key) => {
                Partitioning::Hash(annotations.map_key_forward(op.id, slot, key)?)
            }
            Partitioning::Range(key) => {
                Partitioning::Range(annotations.map_key_forward(op.id, slot, key)?)
            }
            Partitioning::Replicated => Partitioning::Replicated,
            Partitioning::Any => return None,
        };
        Some(GlobalProperties {
            partitioning,
            order: None,
        })
    };
    match &op.kind {
        OperatorKind::Source { .. } => GlobalProperties::any(),
        OperatorKind::Map | OperatorKind::Reduce { .. } => {
            preserve_from(0).unwrap_or_else(GlobalProperties::any)
        }
        OperatorKind::Sink { .. } => GlobalProperties {
            order: None,
            ..post_ship[0].clone()
        },
        OperatorKind::Union => {
            let first = &post_ship[0];
            if post_ship.iter().all(|p| p == first) {
                GlobalProperties {
                    order: None,
                    ..first.clone()
                }
            } else {
                GlobalProperties::any()
            }
        }
        OperatorKind::Match { .. } | OperatorKind::CoGroup { .. } | OperatorKind::Cross => {
            // Prefer preserving the partitioning of a non-replicated side: a
            // replicated side contributes every record everywhere, so the
            // output's distribution follows the partitioned side.
            let left_repl = post_ship[0].partitioning.is_replicated();
            let right_repl = post_ship[1].partitioning.is_replicated();
            if left_repl && right_repl {
                return GlobalProperties::replicated();
            }
            let slots = if left_repl { [1, 0] } else { [0, 1] };
            for slot in slots {
                if post_ship[slot].partitioning.is_replicated() {
                    continue;
                }
                if let Some(props) = preserve_from(slot) {
                    if !props.partitioning.is_replicated() {
                        return props;
                    }
                }
            }
            GlobalProperties::any()
        }
    }
}

/// Keeps only non-dominated candidates: the cheapest per distinct output
/// partitioning, capped at [`MAX_CANDIDATES_PER_OPERATOR`] overall.
fn prune(mut candidates: Vec<Candidate>) -> Vec<Candidate> {
    candidates.sort_by(|a, b| a.cost.total().total_cmp(&b.cost.total()));
    let mut kept: Vec<Candidate> = Vec::new();
    for candidate in candidates {
        if kept.len() >= MAX_CANDIDATES_PER_OPERATOR {
            break;
        }
        if kept.iter().any(|k| k.props == candidate.props) {
            continue;
        }
        kept.push(candidate);
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardinality::estimate;
    use crate::interesting::{interesting_keys, interesting_sort_keys};
    use dataflow::prelude::*;
    use std::sync::Arc;

    fn context<'a>(
        plan: &'a Plan,
        ann: &'a Annotations,
        parallelism: usize,
    ) -> PlanningContext<'a> {
        PlanningContext {
            plan,
            annotations: ann,
            model: CostModel::new(parallelism),
            cards: estimate(plan),
            op_weight: HashMap::new(),
            cache_edges: HashSet::new(),
            interesting: interesting_keys(plan, ann, &[]),
            interesting_sorts: interesting_sort_keys(plan, ann, &[]),
        }
    }

    fn simple_aggregation_plan() -> (Plan, OperatorId) {
        let mut plan = Plan::new();
        let src = plan.source("src", (0..100).map(|i| Record::pair(i % 10, i)).collect());
        let red = plan.reduce(
            "sum",
            src,
            vec![0],
            Arc::new(ReduceClosure(
                |k: &[Value], g: &[Record], out: &mut Collector| {
                    out.collect(Record::pair(k[0].as_long(), g.len() as i64));
                },
            )),
        );
        plan.sink("out", red);
        (plan, red)
    }

    #[test]
    fn reduce_gets_hash_partitioned_input() {
        let (plan, red) = simple_aggregation_plan();
        let ann = Annotations::new();
        let ctx = context(&plan, &ann, 4);
        let best = enumerate_best(&ctx, 4).unwrap();
        assert_eq!(
            best.physical.choice(red).input_ships[0],
            ShipStrategy::PartitionHash(vec![0])
        );
        assert!(best.cost.total() > 0.0);
    }

    #[test]
    fn single_partition_plans_can_forward_everything() {
        let (plan, red) = simple_aggregation_plan();
        let ann = Annotations::new();
        let ctx = context(&plan, &ann, 1);
        let best = enumerate_best(&ctx, 1).unwrap();
        assert_eq!(
            best.physical.choice(red).input_ships[0],
            ShipStrategy::Forward
        );
    }

    #[test]
    fn enumerated_plans_execute_correctly() {
        let (plan, _) = simple_aggregation_plan();
        let ann = Annotations::new();
        let ctx = context(&plan, &ann, 4);
        let best = enumerate_best(&ctx, 4).unwrap();
        let result = Executor::new().execute(&best.physical).unwrap();
        let records = result.sink("out").unwrap();
        assert_eq!(records.len(), 10);
        assert!(records.iter().all(|r| r.long(1) == 10));
    }

    #[test]
    fn join_chooses_broadcast_for_tiny_build_side() {
        let mut plan = Plan::new();
        let tiny = plan.source("tiny", (0..4).map(|i| Record::pair(i, i)).collect());
        let big = plan.source("big", (0..10_000).map(|i| Record::pair(i % 4, i)).collect());
        let join = plan.match_join(
            "join",
            tiny,
            big,
            vec![0],
            vec![0],
            Arc::new(MatchClosure(
                |l: &Record, r: &Record, out: &mut Collector| {
                    out.collect(Record::pair(l.long(0), r.long(1)));
                },
            )),
        );
        plan.sink("out", join);
        let ann = Annotations::new();
        let ctx = context(&plan, &ann, 8);
        let best = enumerate_best(&ctx, 8).unwrap();
        let ships = &best.physical.choice(join).input_ships;
        assert_eq!(ships[0], ShipStrategy::Broadcast);
        assert_eq!(ships[1], ShipStrategy::Forward);
    }

    /// Two 500-record sources feeding a CoGroup on field 0, with the key
    /// copied to output field 0.
    fn cogroup_plan() -> (Plan, OperatorId, Annotations) {
        let mut plan = Plan::new();
        let a = plan.source("a", (0..500).map(|i| Record::pair(i % 50, i)).collect());
        let b = plan.source("b", (0..500).map(|i| Record::pair(i % 50, -i)).collect());
        let cg = plan.cogroup(
            "cg",
            a,
            b,
            vec![0],
            vec![0],
            Arc::new(CoGroupClosure(
                |key: &[Value], l: &[Record], r: &[Record], out: &mut Collector| {
                    out.collect(Record::pair(key[0].as_long(), (l.len() + r.len()) as i64));
                },
            )),
        );
        let mut ann = Annotations::new();
        ann.add_copy(
            cg,
            crate::properties::FieldCopy {
                slot: 0,
                in_field: 0,
                out_field: 0,
            },
        );
        (plan, cg, ann)
    }

    #[test]
    fn cogroup_chooses_range_partitioning_and_merges_without_a_resort() {
        // The CoGroup contract always sort-merges; range-partitioned inputs
        // arrive sorted, so the plan performs (and is charged) no re-sort.
        let (mut plan, cg, ann) = cogroup_plan();
        plan.sink("out", cg);
        let ctx = context(&plan, &ann, 4);
        let best = enumerate_best(&ctx, 4).unwrap();
        let ships = &best.physical.choice(cg).input_ships;
        assert_eq!(ships[0], ShipStrategy::PartitionRange(vec![0]));
        assert_eq!(ships[1], ShipStrategy::PartitionRange(vec![0]));
        assert_eq!(best.physical.choice(cg).local, LocalStrategy::SortMergeJoin);

        // Cost delta vs the hash plan: re-enumerate with range shipping
        // priced out of the market, which forces the hash + local-sort plan
        // over the identical search space.
        let mut no_range = CostModel::new(4);
        no_range.range_penalty = 1e9;
        let forced_hash_ctx = PlanningContext {
            model: no_range,
            ..context(&plan, &ann, 4)
        };
        let hash_best = enumerate_best(&forced_hash_ctx, 4).unwrap();
        assert_eq!(
            hash_best.physical.choice(cg).input_ships[0],
            ShipStrategy::PartitionHash(vec![0])
        );
        // Same network, strictly less CPU: the merge replaces two local
        // Value-comparison sorts with the exchange's memcmp prefix sort.
        assert_eq!(best.cost.network, hash_best.cost.network);
        assert!(
            best.cost.total() < hash_best.cost.total(),
            "range+merge ({}) should beat hash+sort ({})",
            best.cost.total(),
            hash_best.cost.total()
        );
        // The plan executes and matches the default (hash) physical plan.
        let exec = Executor::new();
        let mut ranged = exec.execute(&best.physical).unwrap().sink("out").unwrap();
        let mut default = exec
            .execute(&default_physical_plan(&plan, 4).unwrap())
            .unwrap()
            .sink("out")
            .unwrap();
        ranged.sort();
        default.sort();
        assert_eq!(ranged, default);
        assert_eq!(ranged.len(), 50);
    }

    #[test]
    fn ranged_cogroup_output_lets_a_reduce_forward_without_reshuffling() {
        // Chain: CoGroup (range-partitioned) → Reduce on the same key.  The
        // *collocation* survives the CoGroup through the field copy, so the
        // Reduce forwards its input instead of re-partitioning.  The
        // delivered *order* deliberately does not survive onto the operator
        // output (the executor only advertises sortedness on directly
        // range-exchanged edges), so the Reduce hash-groups rather than
        // being credited a merge-group the runtime would not deliver.
        let (mut plan, cg, mut ann) = cogroup_plan();
        let red = plan.reduce(
            "sum",
            cg,
            vec![0],
            Arc::new(ReduceClosure(
                |key: &[Value], g: &[Record], out: &mut Collector| {
                    out.collect(Record::pair(key[0].as_long(), g.len() as i64));
                },
            )),
        );
        plan.sink("out", red);
        ann.add_copy(
            red,
            crate::properties::FieldCopy {
                slot: 0,
                in_field: 0,
                out_field: 0,
            },
        );
        let ctx = context(&plan, &ann, 4);
        let best = enumerate_best(&ctx, 4).unwrap();
        assert_eq!(
            best.physical.choice(cg).input_ships[0],
            ShipStrategy::PartitionRange(vec![0])
        );
        let reduce_choice = best.physical.choice(red);
        assert_eq!(
            reduce_choice.input_ships[0],
            ShipStrategy::Forward,
            "range collocation satisfies the grouping requirement without a reshuffle"
        );
        assert_eq!(reduce_choice.local, LocalStrategy::HashGroup);
        let result = Executor::new().execute(&best.physical).unwrap();
        assert_eq!(result.sink("out").unwrap().len(), 50);
    }

    #[test]
    fn forward_inherited_range_layouts_never_co_partition_a_join() {
        // A Range property that reaches a join through a Forward edge comes
        // from a different splitter histogram than a range ship at the join
        // would sample — treating them as co-partitioned silently loses
        // matches.  The enumerator must re-ship such inputs: the chosen plan
        // may only range-partition a join input if the *other* side is
        // range-shipped at the same operator (or the plan avoids range
        // entirely).
        let mut plan = Plan::new();
        let left_src = plan.source("left", (0..100).map(|i| Record::pair(i, i)).collect());
        let pre = plan.reduce(
            "pre-aggregate",
            left_src,
            vec![0],
            Arc::new(ReduceClosure(
                |key: &[Value], g: &[Record], out: &mut Collector| {
                    out.collect(Record::pair(key[0].as_long(), g.len() as i64));
                },
            )),
        );
        let right_src = plan.source("right", (90..100).map(|i| Record::pair(i, -i)).collect());
        let join = plan.match_join(
            "join",
            pre,
            right_src,
            vec![0],
            vec![0],
            Arc::new(MatchClosure(
                |l: &Record, r: &Record, out: &mut Collector| {
                    out.collect(Record::pair(l.long(0), r.long(1)));
                },
            )),
        );
        plan.sink("out", join);
        let mut ann = Annotations::new();
        // The pre-aggregate preserves its key, so a ranged layout would
        // propagate to the join's left input.
        ann.add_copy(
            pre,
            crate::properties::FieldCopy {
                slot: 0,
                in_field: 0,
                out_field: 0,
            },
        );
        for slot in [0, 1] {
            ann.add_copy(
                join,
                crate::properties::FieldCopy {
                    slot,
                    in_field: 0,
                    out_field: 0,
                },
            );
        }
        // Make range shipping look free so any unsound range/forward combo
        // would win if the validity check admitted it.
        let mut model = CostModel::new(4);
        model.range_penalty = 0.0;
        let ctx = PlanningContext {
            model,
            ..context(&plan, &ann, 4)
        };
        let best = enumerate_best(&ctx, 4).unwrap();
        let ships = &best.physical.choice(join).input_ships;
        let range_shipped = |s: &ShipStrategy| matches!(s, ShipStrategy::PartitionRange(_));
        assert_eq!(
            range_shipped(&ships[0]),
            range_shipped(&ships[1]),
            "a join may only be ranged on both sides (shared histogram): {ships:?}"
        );
        // Whatever plan wins must execute correctly end-to-end: 10 matches.
        let result = Executor::new().execute(&best.physical).unwrap();
        assert_eq!(result.sink("out").unwrap().len(), 10);
    }

    #[test]
    fn iterative_merge_join_pays_the_range_sort_once_on_the_constant_path() {
        // A workset-style step plan: a small dynamic input joined with a
        // large cached constant input, feeding a Reduce on the copied join
        // key.  Weighted by the iteration count, the optimizer prefers range
        // partitioning both join inputs — the constant side's exchange (and
        // sort) is paid once, while every iteration runs a merge join
        // instead of rebuilding a hash table.
        let mut plan = Plan::new();
        let workset = plan.source(
            "workset",
            (0..1000).map(|i| Record::pair(i % 100, i)).collect(),
        );
        plan.set_estimated_records(workset, 10_000);
        let state = plan.source(
            "state",
            (0..1000).map(|i| Record::pair(i % 100, -i)).collect(),
        );
        plan.set_estimated_records(state, 200_000);
        let join = plan.match_join(
            "join",
            workset,
            state,
            vec![0],
            vec![0],
            Arc::new(MatchClosure(
                |l: &Record, r: &Record, out: &mut Collector| {
                    out.collect(Record::pair(l.long(0), l.long(1) + r.long(1)));
                },
            )),
        );
        plan.set_estimated_records(join, 200_000);
        let red = plan.reduce(
            "agg",
            join,
            vec![0],
            Arc::new(ReduceClosure(
                |key: &[Value], g: &[Record], out: &mut Collector| {
                    out.collect(Record::pair(key[0].as_long(), g.len() as i64));
                },
            )),
        );
        plan.set_estimated_records(red, 10_000);
        let sink = plan.sink("out", red);
        let mut ann = Annotations::new();
        // An equi-join makes the key available from both sides.
        for slot in [0, 1] {
            ann.add_copy(
                join,
                crate::properties::FieldCopy {
                    slot,
                    in_field: 0,
                    out_field: 0,
                },
            );
        }
        ann.add_copy(
            red,
            crate::properties::FieldCopy {
                slot: 0,
                in_field: 0,
                out_field: 0,
            },
        );
        let optimizer = crate::Optimizer::new(8);
        let spec = crate::IterationSpec::new(workset, sink, 20.0);
        let optimized = optimizer.optimize_iterative(&plan, &ann, &spec).unwrap();
        let ships = &optimized.physical.choice(join).input_ships;
        assert_eq!(ships[0], ShipStrategy::PartitionRange(vec![0]));
        assert_eq!(ships[1], ShipStrategy::PartitionRange(vec![0]));
        assert_eq!(
            optimized.physical.choice(join).local,
            LocalStrategy::SortMergeJoin,
            "both inputs arrive sorted: merge join without a re-sort"
        );
        assert!(
            optimized.physical.choice(join).cache_inputs[1],
            "the constant side ships (and sorts) once"
        );
        // Forcing range out of the market yields the hash plan at a higher
        // estimated cost.
        let mut no_range = CostModel::new(8);
        no_range.range_penalty = 1e9;
        let hash_optimizer = crate::Optimizer::with_config(crate::OptimizerConfig {
            parallelism: 8,
            cost_model: no_range,
        });
        let hash_optimized = hash_optimizer
            .optimize_iterative(&plan, &ann, &spec)
            .unwrap();
        assert_eq!(
            hash_optimized.physical.choice(join).input_ships[0],
            ShipStrategy::PartitionHash(vec![0])
        );
        assert!(optimized.cost.total() < hash_optimized.cost.total());
        // The chosen plan still executes correctly.
        let result = Executor::new().execute(&optimized.physical).unwrap();
        assert_eq!(result.sink("out").unwrap().len(), 100);
    }

    #[test]
    fn mixed_hash_and_range_join_candidates_are_never_produced() {
        // The executor rejects joins with one hash- and one range-partitioned
        // input; the enumerator's validity check must never emit one.
        let (mut plan, cg, ann) = cogroup_plan();
        plan.sink("out", cg);
        let ctx = context(&plan, &ann, 4);
        let best = enumerate_best(&ctx, 4).unwrap();
        let ships = &best.physical.choice(cg).input_ships;
        let is_partition = |s: &ShipStrategy| {
            matches!(
                s,
                ShipStrategy::PartitionHash(_) | ShipStrategy::PartitionRange(_)
            )
        };
        if is_partition(&ships[0]) && is_partition(&ships[1]) {
            assert_eq!(
                std::mem::discriminant(&ships[0]),
                std::mem::discriminant(&ships[1]),
                "join inputs must share one partitioning scheme: {ships:?}"
            );
        }
    }

    #[test]
    fn cross_requires_a_replicated_side() {
        let mut plan = Plan::new();
        let a = plan.source("a", (0..10).map(|i| Record::pair(i, i)).collect());
        let b = plan.source("b", (0..10).map(|i| Record::pair(i, i)).collect());
        let cross = plan.cross(
            "x",
            a,
            b,
            Arc::new(CrossClosure(
                |l: &Record, _r: &Record, out: &mut Collector| {
                    out.collect(l.clone());
                },
            )),
        );
        plan.sink("out", cross);
        let ann = Annotations::new();
        let ctx = context(&plan, &ann, 4);
        let best = enumerate_best(&ctx, 4).unwrap();
        let ships = &best.physical.choice(cross).input_ships;
        assert!(ships.contains(&ShipStrategy::Broadcast));
    }
}
