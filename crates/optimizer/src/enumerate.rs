//! Plan enumeration.
//!
//! The enumerator walks the logical plan in topological order and maintains,
//! per operator, a set of candidate physical sub-plans (shipping strategy per
//! input edge, local strategy, resulting global properties, accumulated
//! cost).  Candidates whose cost is dominated by another candidate with the
//! same output properties are pruned, following the classical Volcano-style
//! dynamic programming scheme the paper assumes.  Shipping options per edge
//! include, besides the operator's own requirement, the *interesting*
//! partitionings propagated from downstream operators — which is what allows
//! the enumerator to discover plans that establish a partitioning early on
//! the constant data path (the broadcast PageRank plan of Figure 4).

use crate::cardinality::Cardinalities;
use crate::cost::{Cost, CostModel};
use crate::interesting::EdgeInterests;
use crate::properties::{Annotations, GlobalProperties, Partitioning};
use dataflow::plan::{Operator, OperatorKind, Plan};
use dataflow::prelude::{
    DataflowError, LocalStrategy, OperatorId, PhysicalChoice, PhysicalPlan, Result, ShipStrategy,
};
use std::collections::{HashMap, HashSet};

/// Maximum number of candidates kept per operator after pruning.
const MAX_CANDIDATES_PER_OPERATOR: usize = 12;

/// Everything the enumerator needs to know about the planning problem.
pub struct PlanningContext<'a> {
    /// The logical plan being optimized.
    pub plan: &'a Plan,
    /// Field-copy annotations (output contracts).
    pub annotations: &'a Annotations,
    /// The cost model.
    pub model: CostModel,
    /// Cardinality estimates per operator.
    pub cards: Cardinalities,
    /// Per-operator cost weight; operators on the dynamic data path of an
    /// iteration carry the expected iteration count, all others 1.0.
    pub op_weight: HashMap<OperatorId, f64>,
    /// Edges (consumer, slot) whose exchanged input is cached across
    /// iterations; their shipping cost is charged only once.
    pub cache_edges: HashSet<(OperatorId, usize)>,
    /// Interesting partitioning keys per edge.
    pub interesting: EdgeInterests,
}

impl<'a> PlanningContext<'a> {
    fn weight_of(&self, op: OperatorId) -> f64 {
        self.op_weight.get(&op).copied().unwrap_or(1.0)
    }

    fn edge_weight(&self, consumer: OperatorId, slot: usize) -> f64 {
        if self.cache_edges.contains(&(consumer, slot)) {
            1.0
        } else {
            self.weight_of(consumer)
        }
    }
}

/// One candidate physical sub-plan rooted at some operator.
#[derive(Debug, Clone)]
struct Candidate {
    /// Physical choices for every operator in the sub-plan.
    choices: HashMap<OperatorId, PhysicalChoice>,
    /// Global properties of the operator's output under these choices.
    props: GlobalProperties,
    /// Accumulated (weighted) cost of the sub-plan.
    cost: Cost,
}

/// The result of the enumeration: a full physical plan and its estimated cost.
#[derive(Debug, Clone)]
pub struct EnumeratedPlan {
    /// The chosen physical plan.
    pub physical: PhysicalPlan,
    /// The optimizer's cost estimate for it.
    pub cost: Cost,
}

/// Enumerates physical plans for `ctx` and returns the cheapest one.
pub fn enumerate_best(ctx: &PlanningContext<'_>, parallelism: usize) -> Result<EnumeratedPlan> {
    let order = ctx.plan.validate()?;
    let mut candidates: HashMap<OperatorId, Vec<Candidate>> = HashMap::new();

    for id in order {
        let op = ctx.plan.operator(id);
        let new_candidates = match op.kind {
            OperatorKind::Source { .. } => vec![Candidate {
                choices: HashMap::from([(id, PhysicalChoice::forward(0))]),
                props: GlobalProperties::any(),
                cost: Cost::zero(),
            }],
            _ => enumerate_operator(ctx, op, &candidates, parallelism),
        };
        if new_candidates.is_empty() {
            return Err(DataflowError::InvalidPlan(format!(
                "no valid physical alternative found for operator '{}'",
                op.name
            )));
        }
        candidates.insert(id, prune(new_candidates));
    }

    // Combine the cheapest consistent candidates of all sinks.
    let sinks = ctx.plan.sinks();
    let mut combined: Option<Candidate> = None;
    for sink in sinks {
        let best = candidates[&sink]
            .iter()
            .min_by(|a, b| a.cost.total().total_cmp(&b.cost.total()))
            .expect("pruning never leaves an empty candidate set");
        combined = Some(match combined {
            None => best.clone(),
            Some(mut acc) => {
                for (op, choice) in &best.choices {
                    acc.choices.entry(*op).or_insert_with(|| choice.clone());
                }
                acc.cost = acc.cost.add(best.cost);
                acc
            }
        });
    }
    let combined =
        combined.ok_or_else(|| DataflowError::InvalidPlan("plan has no sinks".to_owned()))?;

    // Assemble the physical plan; operators not reachable from any sink get
    // defaults (they produce data nobody consumes).
    let mut choices = combined.choices;
    for op in ctx.plan.operators() {
        choices
            .entry(op.id)
            .or_insert_with(|| PhysicalChoice::forward(op.inputs.len()));
    }
    let mut physical = PhysicalPlan {
        plan: ctx.plan.clone(),
        choices,
        parallelism,
    };
    for &(consumer, slot) in &ctx.cache_edges {
        physical.cache_input(consumer, slot);
    }
    Ok(EnumeratedPlan {
        physical,
        cost: combined.cost,
    })
}

/// Enumerates candidates for one (non-source) operator given the candidate
/// sets of its inputs.
fn enumerate_operator(
    ctx: &PlanningContext<'_>,
    op: &Operator,
    candidates: &HashMap<OperatorId, Vec<Candidate>>,
    parallelism: usize,
) -> Vec<Candidate> {
    let slots = op.inputs.len();
    let input_candidates: Vec<&Vec<Candidate>> =
        op.inputs.iter().map(|input| &candidates[input]).collect();
    let ship_options: Vec<Vec<ShipStrategy>> = (0..slots)
        .map(|slot| ship_options_for(ctx, op, slot))
        .collect();

    let mut result = Vec::new();
    // Cartesian product over input candidates and ship options per slot.
    let mut selector = vec![0usize; slots * 2];
    loop {
        // Decode the selector into per-slot (candidate index, ship index).
        let mut input_choice = Vec::with_capacity(slots);
        let mut valid_selector = true;
        for slot in 0..slots {
            let cand_idx = selector[slot * 2];
            let ship_idx = selector[slot * 2 + 1];
            if cand_idx >= input_candidates[slot].len() || ship_idx >= ship_options[slot].len() {
                valid_selector = false;
                break;
            }
            input_choice.push((
                &input_candidates[slot][cand_idx],
                &ship_options[slot][ship_idx],
            ));
        }
        if valid_selector {
            if let Some(candidate) = build_candidate(ctx, op, &input_choice, parallelism) {
                result.push(candidate);
            }
        }
        // Advance the mixed-radix selector.
        let mut pos = 0;
        loop {
            if pos >= selector.len() {
                return result;
            }
            let radix = if pos % 2 == 0 {
                input_candidates[pos / 2].len()
            } else {
                ship_options[pos / 2].len()
            };
            selector[pos] += 1;
            if selector[pos] < radix {
                break;
            }
            selector[pos] = 0;
            pos += 1;
        }
        if slots == 0 {
            return result;
        }
    }
}

/// The shipping strategies worth considering for one input edge.
fn ship_options_for(ctx: &PlanningContext<'_>, op: &Operator, slot: usize) -> Vec<ShipStrategy> {
    let mut options = vec![ShipStrategy::Forward];
    let add_hash = |key: &Vec<usize>, options: &mut Vec<ShipStrategy>| {
        let candidate = ShipStrategy::PartitionHash(key.clone());
        if !options.contains(&candidate) {
            options.push(candidate);
        }
    };
    match &op.kind {
        OperatorKind::Reduce { key } => add_hash(key, &mut options),
        OperatorKind::Match {
            left_key,
            right_key,
        }
        | OperatorKind::CoGroup {
            left_key,
            right_key,
            ..
        } => {
            let key = if slot == 0 { left_key } else { right_key };
            add_hash(key, &mut options);
            // Broadcasting is only considered for the smaller join side;
            // replicating the larger input to every instance would also have
            // to be held resident there, which the paper's setting (and any
            // real deployment) rules out for the dominant data set.
            let this_card = ctx.cards.of(op.inputs[slot]);
            let other_card = ctx.cards.of(op.inputs[1 - slot]);
            if this_card < other_card {
                options.push(ShipStrategy::Broadcast);
            }
        }
        OperatorKind::Cross => options.push(ShipStrategy::Broadcast),
        _ => {}
    }
    if let Some(interests) = ctx.interesting.get(&(op.id, slot)) {
        for key in interests {
            add_hash(key, &mut options);
        }
    }
    options
}

/// Builds (and costs) one candidate for `op` from chosen input candidates and
/// shipping strategies; returns `None` if the combination is invalid.
fn build_candidate(
    ctx: &PlanningContext<'_>,
    op: &Operator,
    inputs: &[(&Candidate, &ShipStrategy)],
    parallelism: usize,
) -> Option<Candidate> {
    // Merge the input candidates' choices, rejecting inconsistent overlaps
    // (the same upstream operator planned differently on two branches).
    let mut choices: HashMap<OperatorId, PhysicalChoice> = HashMap::new();
    let mut cost = Cost::zero();
    for (candidate, _) in inputs {
        for (id, choice) in &candidate.choices {
            match choices.get(id) {
                None => {
                    choices.insert(*id, choice.clone());
                }
                Some(existing) => {
                    if existing.input_ships != choice.input_ships || existing.local != choice.local
                    {
                        return None;
                    }
                }
            }
        }
    }
    // Sum the input sub-plan costs exactly once per distinct branch.  (For
    // branches sharing operators the shared cost is counted once per branch;
    // this over-approximation is identical across alternatives and therefore
    // does not change the ranking.)
    let mut seen_roots: HashSet<*const Candidate> = HashSet::new();
    for (candidate, _) in inputs {
        let ptr = *candidate as *const Candidate;
        if seen_roots.insert(ptr) {
            cost = cost.add(candidate.cost);
        }
    }

    // Properties after shipping, and shipping cost.
    let mut post_ship: Vec<GlobalProperties> = Vec::with_capacity(inputs.len());
    let mut input_cards: Vec<f64> = Vec::with_capacity(inputs.len());
    for (slot, (candidate, ship)) in inputs.iter().enumerate() {
        let producer = op.inputs[slot];
        let records = ctx.cards.of(producer);
        input_cards.push(records);
        let weight = ctx.edge_weight(op.id, slot);
        cost = cost.add(ctx.model.ship_cost(ship, records).scale(weight));
        let props = match ship {
            ShipStrategy::Forward => candidate.props.clone(),
            ShipStrategy::PartitionHash(key) | ShipStrategy::PartitionRange(key) => {
                GlobalProperties::hashed(key.clone())
            }
            ShipStrategy::Broadcast => GlobalProperties::replicated(),
        };
        post_ship.push(props);
    }

    if !is_valid(op, &post_ship, parallelism) {
        return None;
    }

    let local = choose_local_strategy(ctx, op, &post_ship, &input_cards);
    cost = cost.add(
        ctx.model
            .local_cost(local, &input_cards)
            .scale(ctx.weight_of(op.id)),
    );

    let props = output_properties(ctx.annotations, op, &post_ship);
    choices.insert(
        op.id,
        PhysicalChoice {
            input_ships: inputs.iter().map(|(_, ship)| (*ship).clone()).collect(),
            local,
            cache_inputs: vec![false; inputs.len()],
        },
    );
    Some(Candidate {
        choices,
        props,
        cost,
    })
}

/// Checks that the post-shipping properties make the operator's parallel
/// execution correct.
fn is_valid(op: &Operator, post_ship: &[GlobalProperties], parallelism: usize) -> bool {
    if parallelism <= 1 {
        return true;
    }
    match &op.kind {
        OperatorKind::Reduce { key } => post_ship[0].partitioning.satisfies_hash(key),
        OperatorKind::Match {
            left_key,
            right_key,
        }
        | OperatorKind::CoGroup {
            left_key,
            right_key,
            ..
        } => {
            let co_partitioned = post_ship[0].partitioning.satisfies_hash(left_key)
                && post_ship[1].partitioning.satisfies_hash(right_key);
            co_partitioned
                || post_ship[0].partitioning.is_replicated()
                || post_ship[1].partitioning.is_replicated()
        }
        OperatorKind::Cross => {
            post_ship[0].partitioning.is_replicated() || post_ship[1].partitioning.is_replicated()
        }
        _ => true,
    }
}

/// Rule-based local strategy choice (costed, but not enumerated — the paper's
/// experiments hinge on the shipping choices, not the join flavour).
fn choose_local_strategy(
    ctx: &PlanningContext<'_>,
    op: &Operator,
    post_ship: &[GlobalProperties],
    input_cards: &[f64],
) -> LocalStrategy {
    match &op.kind {
        OperatorKind::Match { .. } => ctx.model.choose_join_strategy(
            input_cards[0],
            input_cards[1],
            post_ship[0].partitioning.is_replicated(),
            post_ship[1].partitioning.is_replicated(),
        ),
        OperatorKind::CoGroup { .. } => LocalStrategy::SortMergeJoin,
        OperatorKind::Reduce { .. } => LocalStrategy::HashGroup,
        OperatorKind::Cross => LocalStrategy::NestedLoop,
        _ => LocalStrategy::None,
    }
}

/// Global properties of the operator's output under the given input
/// properties, derived from the field-copy annotations.
fn output_properties(
    annotations: &Annotations,
    op: &Operator,
    post_ship: &[GlobalProperties],
) -> GlobalProperties {
    let preserve_from = |slot: usize| -> Option<GlobalProperties> {
        match &post_ship[slot].partitioning {
            Partitioning::Hash(key) => annotations
                .map_key_forward(op.id, slot, key)
                .map(GlobalProperties::hashed),
            Partitioning::Replicated => Some(GlobalProperties::replicated()),
            Partitioning::Any => None,
        }
    };
    match &op.kind {
        OperatorKind::Source { .. } => GlobalProperties::any(),
        OperatorKind::Map | OperatorKind::Reduce { .. } => {
            preserve_from(0).unwrap_or_else(GlobalProperties::any)
        }
        OperatorKind::Sink { .. } => post_ship[0].clone(),
        OperatorKind::Union => {
            let first = &post_ship[0];
            if post_ship.iter().all(|p| p == first) {
                first.clone()
            } else {
                GlobalProperties::any()
            }
        }
        OperatorKind::Match { .. } | OperatorKind::CoGroup { .. } | OperatorKind::Cross => {
            // Prefer preserving the partitioning of a non-replicated side: a
            // replicated side contributes every record everywhere, so the
            // output's distribution follows the partitioned side.
            let left_repl = post_ship[0].partitioning.is_replicated();
            let right_repl = post_ship[1].partitioning.is_replicated();
            if left_repl && right_repl {
                return GlobalProperties::replicated();
            }
            let order = if left_repl { [1, 0] } else { [0, 1] };
            for slot in order {
                if post_ship[slot].partitioning.is_replicated() {
                    continue;
                }
                if let Some(props) = preserve_from(slot) {
                    if !props.partitioning.is_replicated() {
                        return props;
                    }
                }
            }
            GlobalProperties::any()
        }
    }
}

/// Keeps only non-dominated candidates: the cheapest per distinct output
/// partitioning, capped at [`MAX_CANDIDATES_PER_OPERATOR`] overall.
fn prune(mut candidates: Vec<Candidate>) -> Vec<Candidate> {
    candidates.sort_by(|a, b| a.cost.total().total_cmp(&b.cost.total()));
    let mut kept: Vec<Candidate> = Vec::new();
    for candidate in candidates {
        if kept.len() >= MAX_CANDIDATES_PER_OPERATOR {
            break;
        }
        if kept.iter().any(|k| k.props == candidate.props) {
            continue;
        }
        kept.push(candidate);
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardinality::estimate;
    use crate::interesting::interesting_keys;
    use dataflow::prelude::*;
    use std::sync::Arc;

    fn context<'a>(
        plan: &'a Plan,
        ann: &'a Annotations,
        parallelism: usize,
    ) -> PlanningContext<'a> {
        PlanningContext {
            plan,
            annotations: ann,
            model: CostModel::new(parallelism),
            cards: estimate(plan),
            op_weight: HashMap::new(),
            cache_edges: HashSet::new(),
            interesting: interesting_keys(plan, ann, &[]),
        }
    }

    fn simple_aggregation_plan() -> (Plan, OperatorId) {
        let mut plan = Plan::new();
        let src = plan.source("src", (0..100).map(|i| Record::pair(i % 10, i)).collect());
        let red = plan.reduce(
            "sum",
            src,
            vec![0],
            Arc::new(ReduceClosure(
                |k: &[Value], g: &[Record], out: &mut Collector| {
                    out.collect(Record::pair(k[0].as_long(), g.len() as i64));
                },
            )),
        );
        plan.sink("out", red);
        (plan, red)
    }

    #[test]
    fn reduce_gets_hash_partitioned_input() {
        let (plan, red) = simple_aggregation_plan();
        let ann = Annotations::new();
        let ctx = context(&plan, &ann, 4);
        let best = enumerate_best(&ctx, 4).unwrap();
        assert_eq!(
            best.physical.choice(red).input_ships[0],
            ShipStrategy::PartitionHash(vec![0])
        );
        assert!(best.cost.total() > 0.0);
    }

    #[test]
    fn single_partition_plans_can_forward_everything() {
        let (plan, red) = simple_aggregation_plan();
        let ann = Annotations::new();
        let ctx = context(&plan, &ann, 1);
        let best = enumerate_best(&ctx, 1).unwrap();
        assert_eq!(
            best.physical.choice(red).input_ships[0],
            ShipStrategy::Forward
        );
    }

    #[test]
    fn enumerated_plans_execute_correctly() {
        let (plan, _) = simple_aggregation_plan();
        let ann = Annotations::new();
        let ctx = context(&plan, &ann, 4);
        let best = enumerate_best(&ctx, 4).unwrap();
        let result = Executor::new().execute(&best.physical).unwrap();
        let records = result.sink("out").unwrap();
        assert_eq!(records.len(), 10);
        assert!(records.iter().all(|r| r.long(1) == 10));
    }

    #[test]
    fn join_chooses_broadcast_for_tiny_build_side() {
        let mut plan = Plan::new();
        let tiny = plan.source("tiny", (0..4).map(|i| Record::pair(i, i)).collect());
        let big = plan.source("big", (0..10_000).map(|i| Record::pair(i % 4, i)).collect());
        let join = plan.match_join(
            "join",
            tiny,
            big,
            vec![0],
            vec![0],
            Arc::new(MatchClosure(
                |l: &Record, r: &Record, out: &mut Collector| {
                    out.collect(Record::pair(l.long(0), r.long(1)));
                },
            )),
        );
        plan.sink("out", join);
        let ann = Annotations::new();
        let ctx = context(&plan, &ann, 8);
        let best = enumerate_best(&ctx, 8).unwrap();
        let ships = &best.physical.choice(join).input_ships;
        assert_eq!(ships[0], ShipStrategy::Broadcast);
        assert_eq!(ships[1], ShipStrategy::Forward);
    }

    #[test]
    fn cross_requires_a_replicated_side() {
        let mut plan = Plan::new();
        let a = plan.source("a", (0..10).map(|i| Record::pair(i, i)).collect());
        let b = plan.source("b", (0..10).map(|i| Record::pair(i, i)).collect());
        let cross = plan.cross(
            "x",
            a,
            b,
            Arc::new(CrossClosure(
                |l: &Record, _r: &Record, out: &mut Collector| {
                    out.collect(l.clone());
                },
            )),
        );
        plan.sink("out", cross);
        let ann = Annotations::new();
        let ctx = context(&plan, &ann, 4);
        let best = enumerate_best(&ctx, 4).unwrap();
        let ships = &best.physical.choice(cross).input_ships;
        assert!(ships.contains(&ShipStrategy::Broadcast));
    }
}
