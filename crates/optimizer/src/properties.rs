//! Physical data properties and operator annotations.
//!
//! The optimizer reasons about *global properties* of the data flowing along
//! an edge — chiefly how it is partitioned across the parallel worker
//! instances.  Properties are established by shipping strategies and either
//! preserved or destroyed by operators, depending on how the user code treats
//! the fields that the property is defined on.  The paper (Section 4.3)
//! relies on *OutputContracts* for this; here the equivalent information is
//! supplied as [`FieldCopy`] annotations.

use dataflow::prelude::{GlobalOrder, KeyFields, OperatorId};
use std::collections::HashMap;

/// How the records of an edge are distributed over the parallel instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Partitioning {
    /// No known distribution (records may be anywhere).
    Any,
    /// Records are hash-partitioned on the given fields: all records agreeing
    /// on those fields reside in the same partition.
    Hash(KeyFields),
    /// Records are range-partitioned on the given fields: equal keys are
    /// collocated *and* partition `i` holds smaller keys than partition
    /// `i + 1` (the executor's splitter histogram is shared per operator, so
    /// two range-partitioned inputs of the same operator are co-partitioned).
    Range(KeyFields),
    /// Every partition holds a full copy of the data.
    Replicated,
}

impl Partitioning {
    /// True if this partitioning satisfies a requirement to be
    /// **hash**-partitioned by `key`.
    pub fn satisfies_hash(&self, key: &[usize]) -> bool {
        match self {
            Partitioning::Hash(fields) => fields.as_slice() == key,
            _ => false,
        }
    }

    /// True if records with equal `key` values are collocated in one
    /// partition — what a single-input keyed operator (Reduce) actually
    /// needs.  Both hash and range partitioning on the key provide it.
    ///
    /// Collocation is **not** co-partitioning: two range partitionings each
    /// collocate their keys but may come from *different* splitter
    /// histograms, in which case equal keys sit at different partition
    /// indices on the two sides.  Hash routing is one global function, so
    /// hash/hash co-partitioning can be read off the properties; range/range
    /// co-partitioning additionally needs a shared histogram, which only the
    /// enumerator can witness (both edges range-shipped at the same
    /// operator) — see `enumerate::is_valid`.
    pub fn collocates(&self, key: &[usize]) -> bool {
        match self {
            Partitioning::Hash(fields) | Partitioning::Range(fields) => fields.as_slice() == key,
            _ => false,
        }
    }

    /// True if every partition sees all records.
    pub fn is_replicated(&self) -> bool {
        matches!(self, Partitioning::Replicated)
    }
}

/// The global properties of one edge's data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalProperties {
    /// The partitioning across parallel instances.
    pub partitioning: Partitioning,
    /// The global sort order, if one is delivered: the concatenation of the
    /// partitions in partition order is sorted on `order.fields`.  This is
    /// the interesting property range partitioning establishes and the one
    /// sort-based local strategies consume without a re-sort.
    pub order: Option<GlobalOrder>,
}

impl GlobalProperties {
    /// Properties carrying no guarantees.
    pub fn any() -> Self {
        GlobalProperties {
            partitioning: Partitioning::Any,
            order: None,
        }
    }

    /// Hash-partitioned on `key` (no order).
    pub fn hashed(key: KeyFields) -> Self {
        GlobalProperties {
            partitioning: Partitioning::Hash(key),
            order: None,
        }
    }

    /// Range-partitioned on `key` with the delivered ascending global order
    /// — what the executor's range exchange produces.
    pub fn ranged(key: KeyFields) -> Self {
        GlobalProperties {
            partitioning: Partitioning::Range(key.clone()),
            order: Some(GlobalOrder::ascending(key)),
        }
    }

    /// Fully replicated.
    pub fn replicated() -> Self {
        GlobalProperties {
            partitioning: Partitioning::Replicated,
            order: None,
        }
    }

    /// True if the data arrives sorted (ascending) on exactly `key` — the
    /// condition under which a merge join / sort-group on `key` skips its
    /// sort.
    pub fn sorted_on(&self, key: &[usize]) -> bool {
        self.order
            .as_ref()
            .map(|o| o.ascending && o.fields.as_slice() == key)
            .unwrap_or(false)
    }
}

impl Default for GlobalProperties {
    fn default() -> Self {
        GlobalProperties::any()
    }
}

/// Declares that an operator copies input field `in_field` of input `slot`
/// unchanged into output field `out_field` for every record it emits.
///
/// This is the information the optimizer needs to decide whether a
/// partitioning established upstream survives the operator — e.g. whether the
/// PageRank join output is still partitioned by `tid` because the join copies
/// the matrix input's `tid` field into output field 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldCopy {
    /// Input slot the field is read from.
    pub slot: usize,
    /// Field position in that input.
    pub in_field: usize,
    /// Field position in the operator's output.
    pub out_field: usize,
}

/// Per-operator annotations supplied by the plan author (the analogue of
/// Stratosphere's OutputContracts).
#[derive(Debug, Clone, Default)]
pub struct Annotations {
    copies: HashMap<OperatorId, Vec<FieldCopy>>,
}

impl Annotations {
    /// Creates an empty annotation set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a field copy for `op`.
    pub fn add_copy(&mut self, op: OperatorId, copy: FieldCopy) -> &mut Self {
        self.copies.entry(op).or_default().push(copy);
        self
    }

    /// Convenience: registers several copies at once.
    pub fn with_copies(mut self, op: OperatorId, copies: &[FieldCopy]) -> Self {
        self.copies.entry(op).or_default().extend_from_slice(copies);
        self
    }

    /// The field copies declared for `op`.
    pub fn copies(&self, op: OperatorId) -> &[FieldCopy] {
        self.copies.get(&op).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Maps a key expressed in the *input* field space of `slot` to the
    /// operator's *output* field space, if every key field is copied.
    pub fn map_key_forward(&self, op: OperatorId, slot: usize, key: &[usize]) -> Option<KeyFields> {
        let copies = self.copies(op);
        key.iter()
            .map(|&field| {
                copies
                    .iter()
                    .find(|c| c.slot == slot && c.in_field == field)
                    .map(|c| c.out_field)
            })
            .collect()
    }

    /// Maps a key expressed in the operator's *output* field space back to the
    /// field space of input `slot`, if every key field originates there.
    pub fn map_key_backward(
        &self,
        op: OperatorId,
        slot: usize,
        key: &[usize],
    ) -> Option<KeyFields> {
        let copies = self.copies(op);
        key.iter()
            .map(|&field| {
                copies
                    .iter()
                    .find(|c| c.slot == slot && c.out_field == field)
                    .map(|c| c.in_field)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioning_satisfaction() {
        let p = Partitioning::Hash(vec![0]);
        assert!(p.satisfies_hash(&[0]));
        assert!(!p.satisfies_hash(&[1]));
        assert!(!Partitioning::Any.satisfies_hash(&[0]));
        assert!(!Partitioning::Replicated.satisfies_hash(&[0]));
        assert!(Partitioning::Replicated.is_replicated());
    }

    #[test]
    fn both_partitioning_schemes_collocate_equal_keys() {
        assert!(Partitioning::Hash(vec![0]).collocates(&[0]));
        assert!(Partitioning::Range(vec![0]).collocates(&[0]));
        assert!(!Partitioning::Range(vec![1]).collocates(&[0]));
        assert!(!Partitioning::Any.collocates(&[0]));
        // Range partitioning collocates but does not satisfy a *hash*
        // requirement (the routing function differs).
        assert!(!Partitioning::Range(vec![0]).satisfies_hash(&[0]));
    }

    #[test]
    fn ranged_properties_carry_the_delivered_order() {
        let props = GlobalProperties::ranged(vec![0]);
        assert_eq!(props.partitioning, Partitioning::Range(vec![0]));
        assert!(props.sorted_on(&[0]));
        assert!(!props.sorted_on(&[1]));
        assert!(!GlobalProperties::hashed(vec![0]).sorted_on(&[0]));
        assert!(!GlobalProperties::any().sorted_on(&[0]));
    }

    #[test]
    fn field_copy_forward_and_backward_mapping() {
        let op = OperatorId(3);
        let mut ann = Annotations::new();
        ann.add_copy(
            op,
            FieldCopy {
                slot: 1,
                in_field: 0,
                out_field: 0,
            },
        );
        ann.add_copy(
            op,
            FieldCopy {
                slot: 0,
                in_field: 1,
                out_field: 1,
            },
        );
        // tid (field 0 of input 1) survives as output field 0.
        assert_eq!(ann.map_key_forward(op, 1, &[0]), Some(vec![0]));
        // a key on input 1 field 1 is not copied.
        assert_eq!(ann.map_key_forward(op, 1, &[1]), None);
        // output field 0 originates from input 1 field 0.
        assert_eq!(ann.map_key_backward(op, 1, &[0]), Some(vec![0]));
        // output field 0 does not originate from input 0.
        assert_eq!(ann.map_key_backward(op, 0, &[0]), None);
    }

    #[test]
    fn composite_keys_require_all_fields_copied() {
        let op = OperatorId(1);
        let ann = Annotations::new().with_copies(
            op,
            &[
                FieldCopy {
                    slot: 0,
                    in_field: 0,
                    out_field: 0,
                },
                FieldCopy {
                    slot: 0,
                    in_field: 2,
                    out_field: 1,
                },
            ],
        );
        assert_eq!(ann.map_key_forward(op, 0, &[0, 2]), Some(vec![0, 1]));
        assert_eq!(ann.map_key_forward(op, 0, &[0, 1]), None);
    }

    #[test]
    fn default_properties_are_any() {
        assert_eq!(GlobalProperties::default(), GlobalProperties::any());
        assert_eq!(
            GlobalProperties::hashed(vec![2]).partitioning,
            Partitioning::Hash(vec![2])
        );
        assert!(GlobalProperties::replicated().partitioning.is_replicated());
    }
}
