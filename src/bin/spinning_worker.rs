//! `spinning-worker` — one process of a localhost mini-cluster.
//!
//! Each worker is one SPMD process of a multi-process workset run: it
//! generates the same deterministic graph as every other worker, connects
//! the TCP transport through a rendezvous coordinator, runs the requested
//! algorithm over the partitions it owns, and writes its owned solution
//! records plus a per-superstep trace to disk.  Concatenating the workers'
//! solution files in index order reproduces the single-process run byte for
//! byte, and every worker's trace is identical to the single-process trace
//! — the property the `mini_cluster` integration test pins.
//!
//! ```text
//! spinning-worker --algo cc --processes 3 --index 1 \
//!     --coordinator 127.0.0.1:4500 --parallelism 6 \
//!     --vertices 600 --edges 2400 --seed 17 \
//!     --out /tmp/w1.solution --trace /tmp/w1.trace
//! ```
//!
//! With `--processes 1` (the default) no coordinator is needed and the
//! worker runs the in-process transport — the oracle configuration.
//! `SPINNING_COORDINATOR`, `SPINNING_PROCESSES` and `SPINNING_INDEX`
//! provide environment fallbacks for the cluster spec.

use algorithms::{cc_workset_records, sssp_records, ComponentsConfig};
use dataflow::prelude::{ClusterSpec, FaultInjector, TransportHandle};
use graphdata::{rmat, RmatParams, VertexId};
use spinning_core::prelude::{ExecutionMode, WorksetConfig, WorksetResult, WorksetRouting};
use std::io::Write;
use std::process::ExitCode;

/// Command-line / environment configuration of one worker.
struct WorkerArgs {
    algo: String,
    mode: ExecutionMode,
    routing: WorksetRouting,
    parallelism: usize,
    processes: usize,
    index: usize,
    coordinator: Option<String>,
    vertices: usize,
    edges: usize,
    seed: u64,
    source: VertexId,
    max_supersteps: usize,
    out: Option<String>,
    trace: Option<String>,
}

fn env_or(name: &str) -> Option<String> {
    std::env::var(name).ok().filter(|v| !v.trim().is_empty())
}

fn parse<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse().map_err(|e| format!("{flag}: {e}"))
}

fn parse_args() -> Result<WorkerArgs, String> {
    let mut args = WorkerArgs {
        algo: String::new(),
        mode: ExecutionMode::BatchIncremental,
        routing: WorksetRouting::Hash,
        parallelism: 4,
        processes: match env_or("SPINNING_PROCESSES") {
            Some(v) => parse("SPINNING_PROCESSES", &v)?,
            None => 1,
        },
        index: match env_or("SPINNING_INDEX") {
            Some(v) => parse("SPINNING_INDEX", &v)?,
            None => 0,
        },
        coordinator: env_or("SPINNING_COORDINATOR"),
        vertices: 400,
        edges: 1600,
        seed: 17,
        source: 0,
        max_supersteps: 100_000,
        out: None,
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--algo" => args.algo = value,
            "--mode" => {
                args.mode = match value.as_str() {
                    "batch" => ExecutionMode::BatchIncremental,
                    "microstep" => ExecutionMode::Microstep,
                    other => return Err(format!("unknown mode '{other}' (batch|microstep)")),
                }
            }
            "--routing" => {
                args.routing = match value.as_str() {
                    "hash" => WorksetRouting::Hash,
                    "range" => WorksetRouting::Range,
                    other => return Err(format!("unknown routing '{other}' (hash|range)")),
                }
            }
            "--parallelism" => args.parallelism = parse(&flag, &value)?,
            "--processes" => args.processes = parse(&flag, &value)?,
            "--index" => args.index = parse(&flag, &value)?,
            "--coordinator" => args.coordinator = Some(value),
            "--vertices" => args.vertices = parse(&flag, &value)?,
            "--edges" => args.edges = parse(&flag, &value)?,
            "--seed" => args.seed = parse(&flag, &value)?,
            "--source" => args.source = parse(&flag, &value)?,
            "--max-supersteps" => args.max_supersteps = parse(&flag, &value)?,
            "--out" => args.out = Some(value),
            "--trace" => args.trace = Some(value),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.algo.is_empty() {
        return Err("--algo is required (cc|sssp)".into());
    }
    if args.processes > 1 && args.coordinator.is_none() {
        return Err("--coordinator (or SPINNING_COORDINATOR) is required for processes > 1".into());
    }
    Ok(args)
}

fn run(args: &WorkerArgs) -> Result<WorksetResult, String> {
    let transport = if args.processes > 1 {
        let spec = ClusterSpec::new(args.processes, args.index).map_err(|e| e.to_string())?;
        let coordinator = args
            .coordinator
            .as_deref()
            .expect("validated in parse_args");
        TransportHandle::tcp_cluster(spec, coordinator, &FaultInjector::from_env())
            .map_err(|e| format!("cluster rendezvous failed: {e}"))?
    } else {
        TransportHandle::local()
    };
    // Every process generates the identical graph from the same seed — the
    // SPMD contract that lets workers share nothing but their sockets.
    let graph = rmat(args.vertices, args.edges, RmatParams::default(), args.seed).symmetrize();
    match args.algo.as_str() {
        "cc" => {
            let config = ComponentsConfig::new(args.parallelism)
                .with_max_iterations(args.max_supersteps)
                .with_routing(args.routing)
                .with_transport(transport);
            cc_workset_records(&graph, &config, args.mode).map_err(|e| e.to_string())
        }
        "sssp" => {
            let config = WorksetConfig::new(args.parallelism)
                .with_mode(args.mode)
                .with_max_supersteps(args.max_supersteps)
                .with_routing(args.routing)
                .with_transport(transport);
            sssp_records(&graph, args.source, &config).map_err(|e| e.to_string())
        }
        other => Err(format!("unknown algorithm '{other}' (cc|sssp)")),
    }
}

fn write_outputs(args: &WorkerArgs, result: &WorksetResult) -> std::io::Result<()> {
    if let Some(path) = &args.out {
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        for record in &result.solution {
            writeln!(out, "{record}")?;
        }
        out.flush()?;
    }
    if let Some(path) = &args.trace {
        // The trace carries cluster-agreed state only (no wall-clock times),
        // so all workers — and the single-process oracle — write identical
        // files.
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(
            out,
            "supersteps={} converged={}",
            result.supersteps, result.converged
        )?;
        for stats in &result.stats.per_iteration {
            writeln!(
                out,
                "superstep={} workset={} inspected={} changed={} sent={} shipped={} queue_hw={}",
                stats.iteration,
                stats.workset_size,
                stats.elements_inspected,
                stats.elements_changed,
                stats.messages_sent,
                stats.messages_shipped,
                stats.queue_high_water,
            )?;
        }
        out.flush()?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("spinning-worker: {message}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(result) => {
            // End-of-run stats go to stderr so solution and trace files stay
            // clean.  `checkpoint_write_failures` in particular must be
            // visible here: each failed write silently widens the window the
            // next recovery replays.
            eprintln!(
                "spinning-worker[{}/{}]: supersteps={} converged={} messages={} \
                 checkpoints={} checkpoint_write_failures={} recoveries={} queue_high_water={}",
                args.index,
                args.processes,
                result.supersteps,
                result.converged,
                result.stats.total_messages(),
                result.stats.total_checkpoints_written(),
                result.stats.total_checkpoint_write_failures(),
                result.stats.total_recoveries(),
                result.stats.max_queue_high_water(),
            );
            if let Err(error) = write_outputs(&args, &result) {
                eprintln!("spinning-worker: writing outputs failed: {error}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!(
                "spinning-worker[{}/{}]: {message}",
                args.index, args.processes
            );
            ExitCode::FAILURE
        }
    }
}
