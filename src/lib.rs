//! # spinning-dataflows
//!
//! An umbrella crate re-exporting the pieces of this reproduction of
//! *Spinning Fast Iterative Data Flows* (Ewen, Tzoumas, Kaufmann, Markl —
//! VLDB 2012):
//!
//! * [`dataflow`] — the PACT-style parallel dataflow engine (records,
//!   contracts, plans, the shared-nothing executor).
//! * [`optimizer`] — the iteration-aware cost-based optimizer (interesting
//!   properties, constant/dynamic data path, loop-invariant caching).
//! * [`spinning_core`] — bulk iterations and incremental (workset)
//!   iterations, including microstep and asynchronous execution.
//! * [`graphdata`] — graphs, generators, and the Table 2 dataset profiles.
//! * [`algorithms`] — PageRank, Connected Components, SSSP and adaptive
//!   PageRank as iterative dataflows.
//! * [`baselines`] — the Spark-like and Giraph/Pregel-like comparison
//!   engines.
//! * [`spinning_pool`] — the persistent work-stealing worker pool every
//!   parallel region (operator local phases, superstep partitions, baseline
//!   engines) runs on.
//!
//! See `README.md` for a quickstart and `DESIGN.md`/`EXPERIMENTS.md` for the
//! system inventory and the per-figure reproduction record.  Runnable
//! examples live in `examples/`.

#![warn(missing_docs)]

pub use algorithms;
pub use baselines;
pub use dataflow;
pub use graphdata;
pub use optimizer;
pub use spinning_core;
pub use spinning_pool;
